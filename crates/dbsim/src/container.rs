//! `FCDB2`: streaming, append-friendly chunked columnar container — the
//! on-disk half of the paper's simulated database (§5.1.2, Figure 4).
//!
//! Mirrors how HDF5 stores a dataset: data arranged by field (column),
//! each column split into fixed-element **chunks** (disk pages), each
//! chunk passed through a compression filter. The reader can fetch and
//! decompress chunks independently, which is what the Table 11 "read"
//! primitive measures.
//!
//! Unlike the legacy `FCDB1` layout (directory first, body after — so the
//! whole container had to be resident before the first byte hit disk),
//! `FCDB2` is a record *log*: chunks stream to the sink as they finish
//! compressing, the directory trails the data it describes, and a
//! checksummed commit footer marks the last durable point. Writing holds
//! at most the in-flight compression window in memory, and a torn write
//! loses only the records after the last commit.
//!
//! File layout (little-endian), built on the shared
//! [record framing](fcbench_core::stream::put_record):
//!
//! ```text
//! prologue:
//!   magic "FCD2"        4 bytes
//!   codec name          u8 len + bytes
//!   crc32               u32  (over the preceding prologue bytes)
//! records, each framed as `tag u8 | body len u64 | body | crc32 u32`:
//!   COLUMN (tag 1)      name u8 len + bytes | precision u8 | chunk elems u32
//!   CHUNK  (tag 2)      elems u32 | compressed payload
//!   COMMIT (tag 3)      directory of every column/chunk written so far:
//!                         column count u32, then per column
//!                           name u8 len + bytes | precision u8 | rows u64
//!                           chunk elems u32 | chunk count u32
//!                           per chunk: offset u64 | payload len u64 | elems u32
//! locator (after every COMMIT record):
//!   magic "FC2C"        4 bytes
//!   commit offset       u64  (file offset of the COMMIT record)
//!   crc32               u32  (over the preceding locator bytes)
//! ```
//!
//! A **commit point** is a valid `COMMIT` record; the locator is only a
//! fast path for finding the last one without scanning. [`read_container`]
//! first tries the trailing locator and, when the tail is torn, scans
//! forward from the prologue validating record checksums, resuming from
//! the last valid commit and reporting how many uncommitted records were
//! dropped as [`RecoveryOutcome::Recovered`]. Corruption *inside* the
//! committed region (a chunk record whose checksum fails while the
//! directory referencing it is valid) is an error, not a recovery —
//! recovery is for torn tails only.

use fcbench_core::pool::{Ticket, WorkerPool};
use fcbench_core::stream::{
    check_record, crc32, put_record, take_record, RecordCheck, RECORD_OVERHEAD,
};
use fcbench_core::wire;
use fcbench_core::{Compressor, DataDesc, Domain, Error, FloatData, Precision, Result};
use fcbench_telemetry::{Counter, Histogram, InflightGauge};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic of the legacy `FCDB1` layout (see [`legacy`]).
const MAGIC_V1: &[u8; 4] = b"FCDB";
/// Magic of the streaming `FCDB2` layout.
const MAGIC_V2: &[u8; 4] = b"FCD2";
/// Magic of the commit locator written after every `COMMIT` record.
const LOCATOR_MAGIC: &[u8; 4] = b"FC2C";
/// Size of a commit locator: magic + commit offset + crc32.
const LOCATOR_BYTES: usize = 16;

/// Record tags.
const TAG_COLUMN: u8 = 1;
const TAG_CHUNK: u8 = 2;
const TAG_COMMIT: u8 = 3;

/// Directory bytes per chunk entry: offset u64 + payload len u64 + elems u32.
const CHUNK_DIR_BYTES: usize = 20;
/// Directory bytes per column beyond its name and chunk table.
const COLUMN_DIR_BYTES: usize = 18;

/// Ceiling on a directory's declared chunk payload length, as a multiple
/// of the chunk's raw byte size (the container twin of the `FCB3` stream's
/// record-expansion gate): no real codec expands a chunk anywhere near 8x,
/// so a directory claiming more is hostile or corrupt and is rejected
/// before anything is reserved for it.
const MAX_CHUNK_EXPANSION: usize = 8;

/// Slack added to the chunk ceiling for codec headers on tiny chunks.
const CHUNK_SLACK: usize = 4096;

/// Cap on the speculative upfront reservation when decoding a whole column
/// into memory; beyond it, memory grows as decoded bytes actually arrive.
const MAX_UPFRONT_RESERVE: usize = 16 * 1024 * 1024;

/// How container chunks are compressed/decompressed: inline on the caller
/// thread, or pipelined across the persistent [`WorkerPool`] engine.
#[derive(Clone, Copy)]
pub enum ChunkExec<'a> {
    Inline(&'a dyn Compressor),
    Pooled(&'a WorkerPool, &'a Arc<dyn Compressor>),
}

impl ChunkExec<'_> {
    fn name(&self) -> &'static str {
        match self {
            ChunkExec::Inline(c) => c.info().name,
            ChunkExec::Pooled(_, c) => c.info().name,
        }
    }
}

/// One column to be written.
pub struct ColumnData {
    pub name: String,
    pub precision: Precision,
    /// Raw little-endian element bytes.
    pub bytes: Vec<u8>,
}

impl ColumnData {
    pub fn from_f64(name: impl Into<String>, values: &[f64]) -> Self {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        ColumnData {
            name: name.into(),
            precision: Precision::Double,
            bytes,
        }
    }

    pub fn from_f32(name: impl Into<String>, values: &[f32]) -> Self {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        ColumnData {
            name: name.into(),
            precision: Precision::Single,
            bytes,
        }
    }

    pub fn rows(&self) -> usize {
        self.bytes.len() / self.precision.bytes()
    }
}

fn precision_byte(p: Precision) -> u8 {
    match p {
        Precision::Single => 0,
        Precision::Double => 1,
    }
}

/// Write the `FCDB2` prologue; returns its byte length.
fn write_prologue<W: Write>(sink: &mut W, codec_name: &str) -> Result<u64> {
    let name = codec_name.as_bytes();
    if name.len() > 255 {
        return Err(Error::NameTooLong { len: name.len() });
    }
    let mut pro = Vec::with_capacity(9 + name.len());
    pro.extend_from_slice(MAGIC_V2);
    pro.push(name.len() as u8);
    pro.extend_from_slice(name);
    let crc = crc32(&pro);
    pro.extend_from_slice(&crc.to_le_bytes());
    sink.write_all(&pro)?;
    Ok(pro.len() as u64)
}

/// The locator bytes for a `COMMIT` record at `commit_offset`.
fn locator(commit_offset: u64) -> [u8; LOCATOR_BYTES] {
    let mut loc = [0u8; LOCATOR_BYTES];
    loc[..4].copy_from_slice(LOCATOR_MAGIC);
    loc[4..12].copy_from_slice(&commit_offset.to_le_bytes());
    let crc = crc32(&loc[..12]).to_le_bytes();
    loc[12..].copy_from_slice(&crc);
    loc
}

/// Directory metadata of one written column.
struct ColumnMeta {
    name: String,
    precision: Precision,
    chunk_elems: u32,
    rows: u64,
    chunks: Vec<ChunkMeta>,
}

/// Directory metadata of one written chunk record.
struct ChunkMeta {
    /// File offset of the chunk's record (its framing tag byte).
    offset: u64,
    payload_len: u64,
    elems: u32,
}

/// The metadata entry of the column the writer's `open` flag says is being
/// written. `begin_column` pushes the entry and raises the flag together,
/// so a miss means the writer's own state went inconsistent — reported as
/// a typed error rather than a panic in the serving path.
fn open_column(columns: &[ColumnMeta]) -> Result<&ColumnMeta> {
    columns
        .last()
        .ok_or_else(|| Error::Unsupported("internal: open flag set with no column entry".into()))
}

fn open_column_mut(columns: &mut [ColumnMeta]) -> Result<&mut ColumnMeta> {
    columns
        .last_mut()
        .ok_or_else(|| Error::Unsupported("internal: open flag set with no column entry".into()))
}

/// Serialize the cumulative commit directory.
fn encode_directory(columns: &[ColumnMeta]) -> Vec<u8> {
    let body: usize = columns
        .iter()
        .map(|c| COLUMN_DIR_BYTES + c.name.len() + c.chunks.len() * CHUNK_DIR_BYTES)
        .sum();
    let mut dir = Vec::with_capacity(4 + body);
    dir.extend_from_slice(&(columns.len() as u32).to_le_bytes());
    for col in columns {
        dir.push(col.name.len() as u8);
        dir.extend_from_slice(col.name.as_bytes());
        dir.push(precision_byte(col.precision));
        dir.extend_from_slice(&col.rows.to_le_bytes());
        dir.extend_from_slice(&col.chunk_elems.to_le_bytes());
        dir.extend_from_slice(&(col.chunks.len() as u32).to_le_bytes());
        for ch in &col.chunks {
            dir.extend_from_slice(&ch.offset.to_le_bytes());
            dir.extend_from_slice(&ch.payload_len.to_le_bytes());
            dir.extend_from_slice(&ch.elems.to_le_bytes());
        }
    }
    dir
}

/// A pooled compression job whose chunk record has not been emitted yet.
struct PendingChunk {
    ticket: Ticket,
    elems: u32,
}

/// Streaming `FCDB2` encoder: columns are declared with
/// [`begin_column`](Self::begin_column), fed element bytes in
/// arbitrary-sized chunks with [`write`](Self::write), and made durable
/// with [`commit`](Self::commit). Full chunks are compressed (fanned out
/// on the engine in `Pooled` mode with `FrameWriter`-style bounded
/// in-flight submission) and their records emitted as they form, so the
/// writer's footprint is bounded by the in-flight window — never by the
/// container size.
///
/// On any error the writer abandons its in-flight jobs (releasing their
/// pool slots immediately) and is unusable; drop it. The file then ends in
/// a torn tail that [`read_container`] recovers past.
pub struct ContainerWriter<'a, W: Write> {
    sink: W,
    exec: ChunkExec<'a>,
    /// Bytes emitted to the sink so far (more may still be in flight).
    written: u64,
    /// Records emitted since the last commit (COLUMN and CHUNK alike).
    uncommitted: u64,
    /// Commits emitted so far.
    commits: u64,
    /// Directory metadata of every column so far (commits are cumulative).
    columns: Vec<ColumnMeta>,
    /// Whether the last of `columns` is still accepting bytes.
    open: bool,
    /// Partial-chunk accumulator for the open column.
    buf: Vec<u8>,
    /// In-flight pool jobs, in chunk order (never spanning columns).
    pending: VecDeque<PendingChunk>,
    /// Upper bound on `pending.len()` (shared-pool fairness; see
    /// [`FrameWriter::max_in_flight`](fcbench_core::stream::FrameWriter::max_in_flight)).
    inflight_cap: usize,
    /// Reusable per-chunk descriptor.
    bdesc: DataDesc,
    /// Inline-mode scratch input container.
    scratch: FloatData,
    /// Inline-mode payload buffer.
    payload: Vec<u8>,
    /// Commit latency (`dbsim.container.commit`), spanning the column
    /// close, directory emit, locator, and sink flush.
    m_commit: Histogram,
    /// Commits emitted (`dbsim.container.commits`).
    m_commits: Counter,
    /// Records made durable across commits
    /// (`dbsim.container.records.committed`).
    m_records: Counter,
}

impl<'a, W: Write> ContainerWriter<'a, W> {
    /// Start a container on `sink`; the prologue is written immediately.
    pub fn new(mut sink: W, exec: ChunkExec<'a>) -> Result<Self> {
        let written = write_prologue(&mut sink, exec.name())?;
        let reg = crate::metrics::registry();
        Ok(ContainerWriter {
            sink,
            exec,
            written,
            uncommitted: 0,
            commits: 0,
            columns: Vec::new(),
            open: false,
            buf: Vec::new(),
            pending: VecDeque::new(),
            inflight_cap: usize::MAX,
            bdesc: DataDesc::new(Precision::Double, vec![1], Domain::Database)?,
            scratch: FloatData::scratch(),
            payload: Vec::new(),
            m_commit: reg.histogram("dbsim.container.commit"),
            m_commits: reg.counter("dbsim.container.commits"),
            m_records: reg.counter("dbsim.container.records.committed"),
        })
    }

    /// Cap the number of chunks this writer may have in flight on a shared
    /// pool at once (clamped to at least 1). Inline writers ignore it.
    #[must_use]
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.inflight_cap = cap.max(1);
        self
    }

    /// Bytes emitted to the sink so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Records emitted since the last commit — what a crash right now
    /// would lose.
    pub fn uncommitted_records(&self) -> u64 {
        self.uncommitted
    }

    /// Open a new column (closing the previous one, if any): `chunk_elems`
    /// is the page size in elements, the Table 10 variable.
    pub fn begin_column(
        &mut self,
        name: impl Into<String>,
        precision: Precision,
        chunk_elems: usize,
    ) -> Result<()> {
        let r = self.begin_column_inner(name.into(), precision, chunk_elems);
        if r.is_err() {
            self.pending.clear();
        }
        r
    }

    fn begin_column_inner(
        &mut self,
        name: String,
        precision: Precision,
        chunk_elems: usize,
    ) -> Result<()> {
        if name.len() > 255 {
            return Err(Error::NameTooLong { len: name.len() });
        }
        if chunk_elems == 0 || chunk_elems > u32::MAX as usize {
            return Err(Error::BadDescriptor(format!(
                "chunk size {chunk_elems} is outside 1..=u32::MAX elements"
            )));
        }
        self.end_column_inner()?;
        let nlen = [name.len() as u8];
        let prec = [precision_byte(precision)];
        let ce = (chunk_elems as u32).to_le_bytes();
        let rec = put_record(
            &mut self.sink,
            TAG_COLUMN,
            &[&nlen, name.as_bytes(), &prec, &ce],
        )?;
        self.written += rec;
        self.uncommitted += 1;
        self.bdesc.precision = precision;
        self.columns.push(ColumnMeta {
            name,
            precision,
            chunk_elems: chunk_elems as u32,
            rows: 0,
            chunks: Vec::new(),
        });
        self.open = true;
        Ok(())
    }

    /// Feed the next chunk of little-endian element bytes for the open
    /// column. Chunks may be any size (they need not align with pages or
    /// even elements); full pages are compressed and their records emitted
    /// as they form.
    pub fn write(&mut self, bytes: &[u8]) -> Result<()> {
        let r = self.write_inner(bytes);
        if r.is_err() {
            self.pending.clear();
        }
        r
    }

    fn write_inner(&mut self, mut bytes: &[u8]) -> Result<()> {
        if !self.open {
            return Err(Error::Unsupported(
                "container writer has no open column (call begin_column first)".into(),
            ));
        }
        let col = open_column(&self.columns)?;
        let cbytes = (col.chunk_elems as usize).saturating_mul(col.precision.bytes());
        while !bytes.is_empty() {
            // Whole pages straight from the caller's chunk, no copy into
            // the accumulator.
            if self.buf.is_empty() && bytes.len() >= cbytes {
                let (chunk, rest) = bytes.split_at(cbytes);
                self.emit_chunk(chunk)?;
                bytes = rest;
                continue;
            }
            let need = cbytes - self.buf.len();
            let take = need.min(bytes.len());
            let (head, rest) = bytes.split_at(take);
            self.buf.extend_from_slice(head);
            bytes = rest;
            if self.buf.len() == cbytes {
                let full = std::mem::take(&mut self.buf);
                self.emit_chunk(&full)?;
                self.buf = full;
                self.buf.clear();
            }
        }
        Ok(())
    }

    /// Compress one page (full, or the short tail) and emit / enqueue its
    /// chunk record.
    fn emit_chunk(&mut self, chunk: &[u8]) -> Result<()> {
        let esize = open_column(&self.columns)?.precision.bytes();
        debug_assert!(!chunk.is_empty() && chunk.len() % esize == 0);
        let elems = (chunk.len() / esize) as u32;
        self.bdesc.dims[0] = chunk.len() / esize;
        match self.exec {
            ChunkExec::Inline(codec) => {
                self.scratch.refill_from_slice(&self.bdesc, chunk)?;
                let n = codec.compress_into(&self.scratch, &mut self.payload)?;
                let offset = self.written;
                let rec = put_record(
                    &mut self.sink,
                    TAG_CHUNK,
                    &[&elems.to_le_bytes(), &self.payload[..n]],
                )?;
                let col = open_column_mut(&mut self.columns)?;
                col.chunks.push(ChunkMeta {
                    offset,
                    payload_len: n as u64,
                    elems,
                });
                col.rows += elems as u64;
                self.written += rec;
                self.uncommitted += 1;
                Ok(())
            }
            ChunkExec::Pooled(pool, codec) => {
                // Per-writer cap: collect our own oldest chunks until we
                // are back under it before taking another slot.
                while self.pending.len() >= self.inflight_cap {
                    let ContainerWriter {
                        pending,
                        sink,
                        written,
                        uncommitted,
                        columns,
                        ..
                    } = self;
                    Self::collect_oldest(pending, sink, written, uncommitted, columns)?;
                }
                // Saturation discipline: never block in submit while
                // holding tickets — the drain closure collects our own
                // oldest chunk to free a slot instead.
                let ContainerWriter {
                    pending,
                    sink,
                    written,
                    uncommitted,
                    columns,
                    bdesc,
                    ..
                } = self;
                let ticket = pool.submit_compress_draining(codec, bdesc, chunk, || {
                    Self::collect_oldest(pending, sink, written, uncommitted, columns)
                })?;
                pending.push_back(PendingChunk { ticket, elems });
                Ok(())
            }
        }
    }

    /// Collect the oldest in-flight chunk, emit its record, and log its
    /// directory metadata; `false` when nothing is in flight.
    fn collect_oldest(
        pending: &mut VecDeque<PendingChunk>,
        sink: &mut W,
        written: &mut u64,
        uncommitted: &mut u64,
        columns: &mut [ColumnMeta],
    ) -> Result<bool> {
        let Some(PendingChunk { ticket, elems }) = pending.pop_front() else {
            return Ok(false);
        };
        let offset = *written;
        let (payload_len, rec_len) = ticket.collect(|payload| -> Result<(u64, u64)> {
            let n = put_record(sink, TAG_CHUNK, &[&elems.to_le_bytes(), payload])?;
            Ok((payload.len() as u64, n))
        })??;
        let col = open_column_mut(columns)?;
        col.chunks.push(ChunkMeta {
            offset,
            payload_len,
            elems,
        });
        col.rows += elems as u64;
        *written += rec_len;
        *uncommitted += 1;
        Ok(true)
    }

    /// Close the open column: emit the short tail page (if any) and drain
    /// the in-flight window so the column's directory metadata is complete.
    /// A no-op when no column is open.
    pub fn end_column(&mut self) -> Result<()> {
        let r = self.end_column_inner();
        if r.is_err() {
            self.pending.clear();
        }
        r
    }

    fn end_column_inner(&mut self) -> Result<()> {
        if !self.open {
            return Ok(());
        }
        if !self.buf.is_empty() {
            let esize = open_column(&self.columns)?.precision.bytes();
            if self.buf.len() % esize != 0 {
                return Err(Error::BadDescriptor(format!(
                    "column ended mid-element: {} trailing bytes with {esize}-byte elements",
                    self.buf.len() % esize
                )));
            }
            let tail = std::mem::take(&mut self.buf);
            let r = self.emit_chunk(&tail);
            self.buf = tail;
            self.buf.clear();
            r?;
        }
        loop {
            let ContainerWriter {
                pending,
                sink,
                written,
                uncommitted,
                columns,
                ..
            } = self;
            if !Self::collect_oldest(pending, sink, written, uncommitted, columns)? {
                break;
            }
        }
        self.open = false;
        Ok(())
    }

    /// Make everything written so far durable: close the open column, then
    /// emit the cumulative directory as a `COMMIT` record plus its locator
    /// and flush the sink. A reader recovering a torn file resumes from
    /// the newest commit point it can validate.
    pub fn commit(&mut self) -> Result<()> {
        let r = self.commit_inner();
        if r.is_err() {
            self.pending.clear();
        }
        r
    }

    fn commit_inner(&mut self) -> Result<()> {
        fcbench_core::fault::fail_point("container.commit")?;
        let _span = self.m_commit.start_span();
        self.end_column_inner()?;
        let dir = encode_directory(&self.columns);
        let commit_offset = self.written;
        let rec = put_record(&mut self.sink, TAG_COMMIT, &[&dir])?;
        self.written += rec;
        self.sink.write_all(&locator(commit_offset))?;
        self.written += LOCATOR_BYTES as u64;
        self.m_records.add(self.uncommitted);
        self.m_commits.inc();
        self.uncommitted = 0;
        self.commits += 1;
        self.sink.flush()?;
        Ok(())
    }

    /// Commit any uncommitted records and return the sink. (A container
    /// that never committed gets its first commit here, so every finished
    /// container has at least one commit point — even an empty one.)
    pub fn finish(mut self) -> Result<W> {
        if self.uncommitted > 0 || self.commits == 0 {
            let r = self.commit_inner();
            if let Err(e) = r {
                self.pending.clear();
                return Err(e);
            }
        }
        Ok(self.sink)
    }
}

/// Write `columns` to `path`, compressing each chunk with `codec`.
/// `chunk_elems` is the page size in elements (the Table 10 variable).
pub fn write_container(
    path: &Path,
    codec: &dyn Compressor,
    columns: &[ColumnData],
    chunk_elems: usize,
) -> Result<()> {
    write_container_with(path, &ChunkExec::Inline(codec), columns, chunk_elems)
}

/// [`write_container`] with chunk compression pipelined across the
/// persistent worker-pool engine: up to `queue_depth` pages are in flight
/// at once, collected in page order.
pub fn write_container_pooled(
    path: &Path,
    pool: &WorkerPool,
    codec: &Arc<dyn Compressor>,
    columns: &[ColumnData],
    chunk_elems: usize,
) -> Result<()> {
    write_container_with(path, &ChunkExec::Pooled(pool, codec), columns, chunk_elems)
}

/// Shared implementation behind both container writers: drives a
/// [`ContainerWriter`] column by column and syncs the file.
pub fn write_container_with(
    path: &Path,
    exec: &ChunkExec<'_>,
    columns: &[ColumnData],
    chunk_elems: usize,
) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = ContainerWriter::new(std::io::BufWriter::new(file), *exec)?;
    for col in columns {
        w.begin_column(col.name.clone(), col.precision, chunk_elems)?;
        w.write(&col.bytes)?;
    }
    let sink = w.finish()?;
    let file = sink.into_inner().map_err(|e| Error::Io(e.to_string()))?;
    file.sync_all()?;
    Ok(())
}

/// A column read back from disk (still compressed).
#[derive(Debug)]
pub struct CompressedColumn {
    pub name: String,
    pub precision: Precision,
    pub rows: usize,
    pub chunk_elems: usize,
    /// Compressed chunk payloads.
    pub chunks: Vec<Vec<u8>>,
}

/// A parsed container (I/O done, decode pending).
#[derive(Debug)]
pub struct CompressedTable {
    pub codec_name: String,
    pub columns: Vec<CompressedColumn>,
}

/// How [`read_container`] arrived at the table it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The trailing commit locator validated and every byte is accounted
    /// for: the file is exactly what its writer finished.
    Clean,
    /// The file ends in a torn write. The reader resumed from the last
    /// valid commit point, dropping `dropped_records` uncommitted records
    /// (complete-but-uncommitted records, plus one for a partial tail
    /// record when present).
    Recovered { dropped_records: u64 },
    /// A legacy `FCDB1` file, parsed by the [`legacy`] compatibility path
    /// (which has no commit points and no recovery).
    Legacy,
}

/// A parsed container together with its [`RecoveryOutcome`].
#[derive(Debug)]
pub struct ContainerRead {
    pub table: CompressedTable,
    pub outcome: RecoveryOutcome,
}

impl ContainerRead {
    /// `true` when the file was exactly what its writer finished.
    pub fn is_clean(&self) -> bool {
        self.outcome == RecoveryOutcome::Clean
    }
}

/// Read the container file: this is the Table 11 **file I/O** primitive
/// (bytes land in memory; nothing is decompressed yet). A torn tail is
/// recovered, not errored — check [`ContainerRead::outcome`].
pub fn read_container(path: &Path) -> Result<ContainerRead> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    parse_container(&bytes)
}

/// [`read_container`] over an in-memory image (exposed so recovery tests
/// can truncate at arbitrary byte boundaries without touching disk).
pub fn parse_container(bytes: &[u8]) -> Result<ContainerRead> {
    let read = if bytes.len() >= 4 && &bytes[..4] == MAGIC_V1 {
        ContainerRead {
            table: legacy::parse_container_v1(bytes)?,
            outcome: RecoveryOutcome::Legacy,
        }
    } else {
        parse_container_v2(bytes)?
    };
    note_outcome(&read.outcome);
    Ok(read)
}

/// Count how a parse resolved: `dbsim.recovery.clean` / `.legacy` /
/// `.recovered` tally outcomes, and `dbsim.recovery.dropped_records`
/// accumulates the records lost to torn tails.
fn note_outcome(outcome: &RecoveryOutcome) {
    let reg = crate::metrics::registry();
    match outcome {
        RecoveryOutcome::Clean => reg.counter("dbsim.recovery.clean").inc(),
        RecoveryOutcome::Legacy => reg.counter("dbsim.recovery.legacy").inc(),
        RecoveryOutcome::Recovered { dropped_records } => {
            reg.counter("dbsim.recovery.recovered").inc();
            reg.counter("dbsim.recovery.dropped_records")
                .add(*dropped_records);
        }
    }
}

/// Validate the prologue; returns the codec name and the offset of the
/// first record. Truncation here is an error, not a recovery — no commit
/// point can exist in a file without a complete prologue.
fn parse_prologue(bytes: &[u8]) -> Result<(String, usize)> {
    if bytes.len() < 4 {
        return Err(Error::Corrupt("container prologue truncated".into()));
    }
    if &bytes[..4] != MAGIC_V2 {
        return Err(Error::Corrupt("bad container magic".into()));
    }
    let nlen = usize::from(
        *bytes
            .get(4)
            .ok_or_else(|| Error::Corrupt("container prologue truncated".into()))?,
    );
    let crc_at = 5 + nlen;
    let end = crc_at + 4;
    if bytes.len() < end {
        return Err(Error::Corrupt("container prologue truncated".into()));
    }
    let stored = wire::le_u32(bytes, crc_at)?;
    let computed = crc32(&bytes[..crc_at]);
    if stored != computed {
        return Err(Error::ChecksumMismatch {
            context: "container prologue".into(),
            stored,
            computed,
        });
    }
    let codec_name = String::from_utf8(bytes[5..crc_at].to_vec())
        .map_err(|_| Error::Corrupt("codec name not UTF-8".into()))?;
    Ok((codec_name, end))
}

/// Fast path: the last [`LOCATOR_BYTES`] of the file are a valid locator
/// whose `COMMIT` record validates and closes the file exactly. Returns
/// the commit directory when so.
fn valid_trailing_locator(bytes: &[u8], body_start: usize) -> Option<&[u8]> {
    if bytes.len() < body_start + LOCATOR_BYTES {
        return None;
    }
    let loc = &bytes[bytes.len() - LOCATOR_BYTES..];
    if &loc[..4] != LOCATOR_MAGIC {
        return None;
    }
    let stored = wire::le_u32(loc, 12).ok()?;
    if crc32(&loc[..12]) != stored {
        return None;
    }
    let offset = usize::try_from(wire::le_u64(loc, 4).ok()?).ok()?;
    if offset < body_start {
        return None;
    }
    let rec = take_record(bytes, offset)?;
    if rec.tag != TAG_COMMIT || rec.end + LOCATOR_BYTES != bytes.len() {
        return None;
    }
    Some(rec.body)
}

fn parse_container_v2(bytes: &[u8]) -> Result<ContainerRead> {
    let (codec_name, body_start) = parse_prologue(bytes)?;

    if let Some(dir) = valid_trailing_locator(bytes, body_start) {
        let columns = load_directory(bytes, dir, body_start)?;
        return Ok(ContainerRead {
            table: CompressedTable {
                codec_name,
                columns,
            },
            outcome: RecoveryOutcome::Clean,
        });
    }

    // Torn tail: scan forward from the prologue, validating record
    // checksums, and resume from the last commit point that validates.
    let mut pos = body_start;
    let mut last_commit: Option<&[u8]> = None;
    let mut since_commit: u64 = 0;
    let mut torn_tail = false;
    while pos < bytes.len() {
        match take_record(bytes, pos) {
            Some(rec) if rec.tag == TAG_COMMIT => {
                last_commit = Some(rec.body);
                since_commit = 0;
                // The writer put a locator right after this commit; skip
                // it — including a torn prefix of it at EOF, which loses
                // nothing (the commit record alone is the commit point).
                let expect = locator(pos as u64);
                let avail = &bytes[rec.end..];
                let k = avail.len().min(LOCATOR_BYTES);
                if avail[..k] == expect[..k] {
                    pos = rec.end + k;
                } else {
                    pos = rec.end;
                }
            }
            Some(rec) => {
                since_commit += 1;
                pos = rec.end;
            }
            None => {
                torn_tail = true;
                break;
            }
        }
    }
    let dropped_records = since_commit + u64::from(torn_tail);
    let columns = match last_commit {
        Some(dir) => load_directory(bytes, dir, body_start)?,
        // No commit ever made it to disk: recover to the empty container.
        None => Vec::new(),
    };
    Ok(ContainerRead {
        table: CompressedTable {
            codec_name,
            columns,
        },
        outcome: RecoveryOutcome::Recovered { dropped_records },
    })
}

/// Materialize the columns a commit directory describes, cross-validating
/// every claim against the chunk records it references. Every count is
/// bounded by real bytes **before** anything is reserved for it — a
/// directory claiming petabytes backed by a tiny file is a typed error,
/// never an allocation.
fn load_directory(bytes: &[u8], dir: &[u8], body_start: usize) -> Result<Vec<CompressedColumn>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let s = dir
            .get(*pos..*pos + n)
            .ok_or_else(|| Error::Corrupt("commit directory truncated".into()))?;
        *pos += n;
        Ok(s)
    };
    let ncols = wire::len32(wire::le_u32(take(&mut pos, 4)?, 0)?);
    if ncols > dir.len() / COLUMN_DIR_BYTES {
        return Err(Error::Corrupt(format!(
            "directory claims {ncols} columns in {} bytes",
            dir.len()
        )));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let nlen = usize::from(take(&mut pos, 1)?[0]);
        let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
            .map_err(|_| Error::Corrupt("column name not UTF-8".into()))?;
        let precision = match take(&mut pos, 1)?[0] {
            0 => Precision::Single,
            1 => Precision::Double,
            b => return Err(Error::Corrupt(format!("bad precision byte {b}"))),
        };
        let esize = precision.bytes();
        let rows = usize::try_from(wire::le_u64(take(&mut pos, 8)?, 0)?)
            .map_err(|_| Error::Corrupt("row count does not fit in memory".into()))?;
        let chunk_elems = wire::len32(wire::le_u32(take(&mut pos, 4)?, 0)?);
        let nchunks = wire::len32(wire::le_u32(take(&mut pos, 4)?, 0)?);
        if chunk_elems == 0 {
            return Err(Error::Corrupt("zero chunk size".into()));
        }
        if nchunks != rows.div_ceil(chunk_elems) {
            return Err(Error::Corrupt(format!(
                "directory claims {nchunks} chunks for {rows} rows at {chunk_elems} elems/chunk"
            )));
        }
        // The chunk table must be backed by real directory bytes before the
        // chunk list is reserved.
        if dir.len().saturating_sub(pos) < nchunks.saturating_mul(CHUNK_DIR_BYTES) {
            return Err(Error::Corrupt("directory chunk table truncated".into()));
        }
        let mut chunks = Vec::with_capacity(nchunks);
        let mut remaining = rows;
        for _ in 0..nchunks {
            let offset = usize::try_from(wire::le_u64(take(&mut pos, 8)?, 0)?)
                .map_err(|_| Error::Corrupt("chunk offset outside the file".into()))?;
            let payload_len = usize::try_from(wire::le_u64(take(&mut pos, 8)?, 0)?)
                .map_err(|_| Error::Corrupt("chunk payload length does not fit".into()))?;
            let elems = wire::len32(wire::le_u32(take(&mut pos, 4)?, 0)?);
            if elems != remaining.min(chunk_elems) {
                return Err(Error::Corrupt(
                    "chunk element count disagrees with the row count".into(),
                ));
            }
            // Claim plausibility, both directions, before touching the
            // record: payload within the expansion ceiling for the chunk's
            // raw size, and raw size within the decode-claim ceiling for
            // the payload (the codec-level gate every decode enforces).
            let raw = elems.saturating_mul(esize);
            if payload_len
                > raw
                    .saturating_mul(MAX_CHUNK_EXPANSION)
                    .saturating_add(CHUNK_SLACK)
            {
                return Err(Error::Corrupt(format!(
                    "directory claims {payload_len} payload bytes for a {raw}-byte chunk"
                )));
            }
            let cdesc = DataDesc::new(precision, vec![elems], Domain::Database)?;
            fcbench_core::blocks::check_decode_claim(&cdesc, payload_len)?;
            if offset < body_start || offset >= bytes.len() {
                return Err(Error::Corrupt("chunk offset outside the file".into()));
            }
            let rec = match check_record(bytes, offset) {
                Ok(rec) => rec,
                Err(RecordCheck::Truncated) => {
                    return Err(Error::Corrupt("committed chunk record truncated".into()))
                }
                Err(RecordCheck::Mismatch { stored, computed }) => {
                    return Err(Error::ChecksumMismatch {
                        context: format!("chunk record at offset {offset}"),
                        stored,
                        computed,
                    })
                }
            };
            if rec.tag != TAG_CHUNK || rec.body.len() < 4 {
                return Err(Error::Corrupt(
                    "directory points at something that is not a chunk record".into(),
                ));
            }
            let rec_elems = wire::len32(wire::le_u32(rec.body, 0)?);
            let payload = &rec.body[4..];
            if rec_elems != elems || payload.len() != payload_len {
                return Err(Error::Corrupt(
                    "chunk record disagrees with the directory".into(),
                ));
            }
            chunks.push(payload.to_vec());
            remaining -= elems;
        }
        columns.push(CompressedColumn {
            name,
            precision,
            rows,
            chunk_elems,
            chunks,
        });
    }
    if pos != dir.len() {
        return Err(Error::Corrupt("trailing bytes in commit directory".into()));
    }
    Ok(columns)
}

impl CompressedColumn {
    /// Decode every chunk with `codec` — the Table 11 **decode** primitive.
    /// A single reused scratch container serves every chunk.
    pub fn decode(&self, codec: &dyn Compressor) -> Result<ColumnData> {
        let esize = self.precision.bytes();
        let mut scratch = FloatData::scratch();
        // lint: claim-checked(reservation clamped to MAX_UPFRONT_RESERVE)
        let mut bytes =
            Vec::with_capacity(self.rows.saturating_mul(esize).min(MAX_UPFRONT_RESERVE));
        let mut remaining = self.rows;
        for chunk in &self.chunks {
            let elems = remaining.min(self.chunk_elems);
            if elems == 0 {
                return Err(Error::Corrupt("more chunks than rows".into()));
            }
            let desc = DataDesc::new(self.precision, vec![elems], Domain::Database)?;
            codec.decompress_into(chunk, &desc, &mut scratch)?;
            bytes.extend_from_slice(scratch.bytes());
            remaining -= elems;
        }
        if remaining != 0 {
            return Err(Error::Corrupt("chunks do not cover all rows".into()));
        }
        Ok(ColumnData {
            name: self.name.clone(),
            precision: self.precision,
            bytes,
        })
    }

    /// An independent pooled reading cursor over this column; any number
    /// of cursors (over the same or different columns, from the same or
    /// different tables) can share one engine concurrently.
    pub fn cursor<'a>(
        &'a self,
        pool: &'a WorkerPool,
        codec: &Arc<dyn Compressor>,
    ) -> Result<ColumnCursor<'a>> {
        let reg = crate::metrics::registry();
        Ok(ColumnCursor {
            col: self,
            pool,
            codec: Arc::clone(codec),
            bdesc: DataDesc::new(self.precision, vec![1], Domain::Database)?,
            submitted: 0,
            collected: 0,
            remaining_submit: self.rows,
            pending: VecDeque::new(),
            inflight_cap: usize::MAX,
            current: Vec::new(),
            failed: false,
            stalls: reg.counter("dbsim.cursor.read_ahead.stalls"),
            inflight: InflightGauge::attached(reg.gauge("dbsim.cursor.chunks_in_flight")),
        })
    }

    /// [`decode`](Self::decode) with chunk decompression pipelined across
    /// the persistent worker-pool engine, collected in page order.
    pub fn decode_pooled(
        &self,
        pool: &WorkerPool,
        codec: &Arc<dyn Compressor>,
    ) -> Result<ColumnData> {
        let esize = self.precision.bytes();
        // lint: claim-checked(reservation clamped to MAX_UPFRONT_RESERVE)
        let mut bytes =
            Vec::with_capacity(self.rows.saturating_mul(esize).min(MAX_UPFRONT_RESERVE));
        let mut cursor = self.cursor(pool, codec)?;
        while let Some(chunk) = cursor.next_chunk()? {
            bytes.extend_from_slice(chunk);
        }
        if bytes.len() != self.rows * esize {
            return Err(Error::Corrupt("reassembled column size mismatch".into()));
        }
        Ok(ColumnData {
            name: self.name.clone(),
            precision: self.precision,
            bytes,
        })
    }

    /// Total compressed bytes of this column.
    pub fn compressed_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

/// An independent pooled decode cursor over one [`CompressedColumn`]: a
/// bounded read-ahead of chunks is kept in flight on the shared engine and
/// decoded pages come back in column order. Cursors follow the engine's
/// saturation discipline (never block in submit while holding tickets), so
/// any number of concurrent readers — the paper's database serving many
/// scans at once — can share one pool without deadlocking it.
pub struct ColumnCursor<'a> {
    col: &'a CompressedColumn,
    pool: &'a WorkerPool,
    codec: Arc<dyn Compressor>,
    bdesc: DataDesc,
    /// Chunks submitted to the engine.
    submitted: usize,
    /// Chunks handed to the caller.
    collected: usize,
    /// Rows not yet covered by submitted chunks.
    remaining_submit: usize,
    pending: VecDeque<Ticket>,
    /// Upper bound on read-ahead jobs in flight (shared-pool fairness).
    inflight_cap: usize,
    /// The most recently collected decoded page.
    current: Vec<u8>,
    /// Sticky failure: once a chunk errors, later reads refuse instead of
    /// yielding pages out of order.
    failed: bool,
    /// Times the caller had to wait on a decode that hadn't finished
    /// (`dbsim.cursor.read_ahead.stalls`) — read-ahead not keeping up.
    stalls: Counter,
    /// This cursor's contribution to `dbsim.cursor.chunks_in_flight`;
    /// released on drop even if the cursor is abandoned mid-column.
    inflight: InflightGauge,
}

impl ColumnCursor<'_> {
    /// Cap this cursor's decode read-ahead at `cap` in-flight chunks
    /// (clamped to at least 1).
    #[must_use]
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.inflight_cap = cap.max(1);
        self
    }

    /// Chunks not yet handed to the caller.
    pub fn chunks_remaining(&self) -> usize {
        self.col.chunks.len() - self.collected
    }

    /// Decode and return the next page's element bytes in column order, or
    /// `None` after the final chunk. The returned slice lives until the
    /// next call.
    pub fn next_chunk(&mut self) -> Result<Option<&[u8]>> {
        if self.failed {
            return Err(Error::Corrupt(
                "column cursor is in a failed state (an earlier chunk errored)".into(),
            ));
        }
        match self.advance() {
            Ok(false) => Ok(None),
            Ok(true) => Ok(Some(&self.current)),
            Err(e) => {
                self.failed = true;
                self.pending.clear();
                self.inflight.sync(0);
                Err(e)
            }
        }
    }

    fn advance(&mut self) -> Result<bool> {
        if self.collected == self.col.chunks.len() {
            return Ok(false);
        }
        // Keep the read-ahead window full, bounded by the queue. With jobs
        // of our own in flight we never block in submit — a saturated pool
        // just ends the top-up (collecting our front below frees a slot).
        let window = self.pool.queue_depth().min(self.inflight_cap);
        while self.submitted < self.col.chunks.len() && self.pending.len() < window {
            let elems = self.remaining_submit.min(self.col.chunk_elems);
            if elems == 0 {
                return Err(Error::Corrupt("more chunks than rows".into()));
            }
            self.bdesc.dims[0] = elems;
            let payload = &self.col.chunks[self.submitted];
            let ticket = match self
                .pool
                .try_submit_decompress(&self.codec, &self.bdesc, payload)?
            {
                Some(t) => t,
                None if self.pending.is_empty() => {
                    self.pool
                        .submit_decompress(&self.codec, &self.bdesc, payload)?
                }
                None => break,
            };
            self.pending.push_back(ticket);
            self.submitted += 1;
            self.remaining_submit -= elems;
        }
        self.inflight.sync(self.pending.len());
        if self.submitted == self.col.chunks.len() && self.remaining_submit != 0 {
            return Err(Error::Corrupt("chunks do not cover all rows".into()));
        }
        let ticket = self
            .pending
            .pop_front()
            .ok_or_else(|| Error::Corrupt("column cursor lost its read-ahead".into()))?;
        if !ticket.is_finished() {
            self.stalls.inc();
        }
        let current = &mut self.current;
        ticket.collect(|decoded| {
            current.clear();
            current.extend_from_slice(decoded);
        })?;
        self.collected += 1;
        self.inflight.sync(self.pending.len());
        Ok(true)
    }
}

/// The legacy `FCDB1` layout: directory first, concatenated chunk body
/// after, no checksums and no commit points.
///
/// **Deprecated.** New containers are always written as `FCDB2`; this
/// module exists so files produced before the layout change still read
/// (surfacing [`RecoveryOutcome::Legacy`]) and can be upgraded in place
/// with [`upgrade_container`]. A torn or bit-flipped `FCDB1` file is
/// undetectable beyond structural bounds checks — migrate.
pub mod legacy {
    use super::*;

    /// Parse a legacy `FCDB1` image. Prefer [`parse_container`], which
    /// dispatches on the magic and reports the layout via
    /// [`RecoveryOutcome::Legacy`].
    pub fn parse_container_v1(bytes: &[u8]) -> Result<CompressedTable> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = bytes
                .get(*pos..*pos + n)
                .ok_or_else(|| Error::Corrupt("container truncated".into()))?;
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC_V1 {
            return Err(Error::Corrupt("bad container magic".into()));
        }
        let nlen = usize::from(take(&mut pos, 1)?[0]);
        let codec_name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
            .map_err(|_| Error::Corrupt("codec name not UTF-8".into()))?;
        let ncols = wire::len32(wire::le_u32(take(&mut pos, 4)?, 0)?);
        // Bound the claim by real bytes before reserving anything for it: a
        // column header is at least 18 bytes (name length, precision, rows,
        // chunk_elems, nchunks), so a count beyond remaining/18 is hostile.
        if ncols > bytes.len().saturating_sub(pos) / 18 {
            return Err(Error::Corrupt(format!(
                "container claims {ncols} columns in {} bytes",
                bytes.len()
            )));
        }

        struct Meta {
            name: String,
            precision: Precision,
            rows: usize,
            chunk_elems: usize,
            sizes: Vec<usize>,
        }
        // lint: claim-checked(ncols bounded by remaining bytes above)
        let mut metas = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let nlen = usize::from(take(&mut pos, 1)?[0]);
            let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
                .map_err(|_| Error::Corrupt("column name not UTF-8".into()))?;
            let precision = match take(&mut pos, 1)?[0] {
                0 => Precision::Single,
                1 => Precision::Double,
                b => return Err(Error::Corrupt(format!("bad precision byte {b}"))),
            };
            let rows = usize::try_from(wire::le_u64(take(&mut pos, 8)?, 0)?)
                .map_err(|_| Error::Corrupt("row count does not fit in memory".into()))?;
            let chunk_elems = wire::len32(wire::le_u32(take(&mut pos, 4)?, 0)?);
            let nchunks = wire::len32(wire::le_u32(take(&mut pos, 4)?, 0)?);
            if chunk_elems == 0 || nchunks > rows.max(1) {
                return Err(Error::Corrupt("implausible chunk layout".into()));
            }
            // The size table is 8 bytes per chunk; bound the count by the
            // bytes actually present before reserving the list.
            if nchunks > bytes.len().saturating_sub(pos) / 8 {
                return Err(Error::Corrupt("chunk size table truncated".into()));
            }
            // lint: claim-checked(nchunks bounded by remaining bytes above)
            let mut sizes = Vec::with_capacity(nchunks);
            for _ in 0..nchunks {
                sizes.push(wire::len64(wire::le_u64(take(&mut pos, 8)?, 0)?));
            }
            metas.push(Meta {
                name,
                precision,
                rows,
                chunk_elems,
                sizes,
            });
        }

        // lint: claim-checked(ncols bounded by remaining bytes above)
        let mut columns = Vec::with_capacity(ncols);
        for m in metas {
            // lint: claim-checked(each size table was bounded by real bytes when parsed)
            let mut chunks = Vec::with_capacity(m.sizes.len());
            for &sz in &m.sizes {
                chunks.push(take(&mut pos, sz)?.to_vec());
            }
            columns.push(CompressedColumn {
                name: m.name,
                precision: m.precision,
                rows: m.rows,
                chunk_elems: m.chunk_elems,
                chunks,
            });
        }
        if pos != bytes.len() {
            return Err(Error::Corrupt("trailing bytes in container".into()));
        }
        Ok(CompressedTable {
            codec_name,
            columns,
        })
    }

    /// Write `columns` in the legacy `FCDB1` layout (inline compression
    /// only, whole container materialized in memory — the behavior
    /// `FCDB2` replaced). Kept for fixture generation and upgrade tests;
    /// do not use for new files.
    pub fn write_container_v1(
        path: &Path,
        codec: &dyn Compressor,
        columns: &[ColumnData],
        chunk_elems: usize,
    ) -> Result<()> {
        assert!(chunk_elems > 0);
        let codec_name = codec.info().name.as_bytes();
        if codec_name.len() > 255 {
            return Err(Error::NameTooLong {
                len: codec_name.len(),
            });
        }
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC_V1);
        header.push(codec_name.len() as u8);
        header.extend_from_slice(codec_name);
        header.extend_from_slice(&(columns.len() as u32).to_le_bytes());

        let mut scratch = FloatData::scratch();
        let mut payload = Vec::new();
        let mut body: Vec<u8> = Vec::new();
        for col in columns {
            let esize = col.precision.bytes();
            let chunk_bytes = chunk_elems * esize;
            let nchunks = col.bytes.len().div_ceil(chunk_bytes).max(1);

            let name = col.name.as_bytes();
            header.push(name.len() as u8);
            header.extend_from_slice(name);
            header.push(precision_byte(col.precision));
            header.extend_from_slice(&(col.rows() as u64).to_le_bytes());
            header.extend_from_slice(&(chunk_elems as u32).to_le_bytes());
            header.extend_from_slice(&(nchunks as u32).to_le_bytes());

            let mut sizes: Vec<u64> = Vec::with_capacity(nchunks);
            for chunk in col.bytes.chunks(chunk_bytes.max(esize)) {
                let elems = chunk.len() / esize;
                let desc = DataDesc::new(col.precision, vec![elems], Domain::Database)?;
                scratch.refill_from_slice(&desc, chunk)?;
                let n = codec.compress_into(&scratch, &mut payload)?;
                sizes.push(n as u64);
                body.extend_from_slice(&payload[..n]);
            }
            for s in sizes {
                header.extend_from_slice(&s.to_le_bytes());
            }
        }

        let mut f = std::fs::File::create(path)?;
        f.write_all(&header)?;
        f.write_all(&body)?;
        f.sync_all()?;
        Ok(())
    }
}

/// One-shot converter: read the container at `src` (any layout) and write
/// it at `dst` as a clean single-commit `FCDB2` file, re-framing the
/// already-compressed chunks without recompressing anything (no codec
/// needed).
pub fn upgrade_container(src: &Path, dst: &Path) -> Result<()> {
    let read = read_container(src)?;
    write_compressed_table(dst, &read.table)
}

/// Write an already-compressed table as a single-commit `FCDB2` file.
fn write_compressed_table(path: &Path, table: &CompressedTable) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut sink = std::io::BufWriter::new(file);
    let mut written = write_prologue(&mut sink, &table.codec_name)?;
    let mut metas = Vec::with_capacity(table.columns.len());
    for col in &table.columns {
        if col.name.len() > 255 {
            return Err(Error::NameTooLong {
                len: col.name.len(),
            });
        }
        if col.chunk_elems == 0 || col.chunk_elems > u32::MAX as usize {
            return Err(Error::BadDescriptor(format!(
                "chunk size {} is outside 1..=u32::MAX elements",
                col.chunk_elems
            )));
        }
        let nlen = [col.name.len() as u8];
        let prec = [precision_byte(col.precision)];
        let ce = (col.chunk_elems as u32).to_le_bytes();
        written += put_record(
            &mut sink,
            TAG_COLUMN,
            &[&nlen, col.name.as_bytes(), &prec, &ce],
        )?;
        let mut meta = ColumnMeta {
            name: col.name.clone(),
            precision: col.precision,
            chunk_elems: col.chunk_elems as u32,
            rows: 0,
            chunks: Vec::new(),
        };
        let mut remaining = col.rows;
        for chunk in &col.chunks {
            let elems = remaining.min(col.chunk_elems);
            if elems == 0 {
                return Err(Error::Corrupt("more chunks than rows".into()));
            }
            let offset = written;
            let rec = put_record(
                &mut sink,
                TAG_CHUNK,
                &[&(elems as u32).to_le_bytes(), chunk],
            )?;
            meta.chunks.push(ChunkMeta {
                offset,
                payload_len: chunk.len() as u64,
                elems: elems as u32,
            });
            meta.rows += elems as u64;
            written += rec;
            remaining -= elems;
        }
        if remaining != 0 {
            return Err(Error::Corrupt("chunks do not cover all rows".into()));
        }
        metas.push(meta);
    }
    let dir = encode_directory(&metas);
    put_record(&mut sink, TAG_COMMIT, &[&dir])?;
    sink.write_all(&locator(written))?;
    sink.flush()?;
    let file = sink.into_inner().map_err(|e| Error::Io(e.to_string()))?;
    file.sync_all()?;
    Ok(())
}

/// Byte length of a framed record with `body_len` body bytes (exposed for
/// the crash-recovery tests, which compute framing boundaries).
pub fn record_len(body_len: u64) -> u64 {
    RECORD_OVERHEAD + body_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::pool::PoolConfig;
    use fcbench_core::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};

    struct StoreCodec;

    impl Compressor for StoreCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "store",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fcbench-dbsim-{}-{name}", std::process::id()))
    }

    #[test]
    fn pooled_container_matches_inline_bytes_and_round_trips() {
        let inline_path = tmp("pool-a");
        let pooled_path = tmp("pool-b");
        let a: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..1234).map(|i| i as f32 * 0.5).collect();
        let cols = vec![
            ColumnData::from_f64("price", &a),
            ColumnData::from_f32("qty", &b),
        ];
        write_container(&inline_path, &StoreCodec, &cols, 100).unwrap();

        let pool = WorkerPool::new(PoolConfig::with_threads(3));
        let codec: Arc<dyn Compressor> = Arc::new(StoreCodec);
        write_container_pooled(&pooled_path, &pool, &codec, &cols, 100).unwrap();

        // Page-order collection means the pooled container is bit-identical.
        assert_eq!(
            std::fs::read(&inline_path).unwrap(),
            std::fs::read(&pooled_path).unwrap()
        );

        let read = read_container(&pooled_path).unwrap();
        assert_eq!(read.outcome, RecoveryOutcome::Clean);
        for (col, orig) in read.table.columns.iter().zip(cols.iter()) {
            let inline = col.decode(&StoreCodec).unwrap();
            let pooled = col.decode_pooled(&pool, &codec).unwrap();
            assert_eq!(inline.bytes, orig.bytes);
            assert_eq!(pooled.bytes, orig.bytes);
        }
        std::fs::remove_file(&inline_path).ok();
        std::fs::remove_file(&pooled_path).ok();
    }

    #[test]
    fn telemetry_counts_commits_and_recovery_outcomes() {
        // The registry is process-wide and shared with every other test in
        // this binary, so assert on deltas, not absolute values.
        let reg = crate::metrics::registry();
        let before = reg.snapshot();
        let c = |s: &fcbench_telemetry::Snapshot, n: &str| s.counter(n).unwrap_or(0);
        let h = |s: &fcbench_telemetry::Snapshot, n: &str| {
            s.histogram(n).map(|hs| hs.count()).unwrap_or(0)
        };

        let path = tmp("telemetry");
        let a: Vec<f64> = (0..64).map(|i| i as f64).collect();
        write_container(&path, &StoreCodec, &[ColumnData::from_f64("x", &a)], 32).unwrap();
        assert!(read_container(&path).unwrap().is_clean());
        std::fs::remove_file(&path).ok();

        let after = reg.snapshot();
        assert_eq!(
            c(&after, "dbsim.recovery.clean"),
            c(&before, "dbsim.recovery.clean") + 1
        );
        assert_eq!(
            c(&after, "dbsim.container.commits"),
            c(&before, "dbsim.container.commits") + 1
        );
        // One COLUMN record plus two CHUNK records were made durable.
        assert_eq!(
            c(&after, "dbsim.container.records.committed"),
            c(&before, "dbsim.container.records.committed") + 3
        );
        assert_eq!(
            h(&after, "dbsim.container.commit"),
            h(&before, "dbsim.container.commit") + 1
        );
    }

    #[test]
    fn container_round_trip() {
        let path = tmp("rt");
        let a: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f32> = (0..500).map(|i| i as f32).collect();
        let cols = vec![
            ColumnData::from_f64("price", &a),
            ColumnData::from_f32("qty", &b),
        ];
        write_container(&path, &StoreCodec, &cols, 128).unwrap();

        let read = read_container(&path).unwrap();
        assert!(read.is_clean());
        let table = read.table;
        assert_eq!(table.codec_name, "store");
        assert_eq!(table.columns.len(), 2);
        assert_eq!(table.columns[0].rows, 1000);
        assert_eq!(table.columns[1].rows, 500);
        // 1000 rows at 128 elems/chunk => 8 chunks.
        assert_eq!(table.columns[0].chunks.len(), 8);

        let col0 = table.columns[0].decode(&StoreCodec).unwrap();
        assert_eq!(col0.bytes, cols[0].bytes);
        let col1 = table.columns[1].decode(&StoreCodec).unwrap();
        assert_eq!(col1.bytes, cols[1].bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ragged_last_chunk() {
        let path = tmp("ragged");
        let a: Vec<f64> = (0..130).map(|i| i as f64).collect();
        write_container(&path, &StoreCodec, &[ColumnData::from_f64("x", &a)], 64).unwrap();
        let table = read_container(&path).unwrap().table;
        assert_eq!(table.columns[0].chunks.len(), 3); // 64 + 64 + 2
        let col = table.columns[0].decode(&StoreCodec).unwrap();
        assert_eq!(col.rows(), 130);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_writes_and_commits_append() {
        // Feed a column in dribbles across chunk boundaries, commit, then
        // append a second column and commit again: the trailing commit
        // sees both.
        let path = tmp("incr");
        let a: Vec<f64> = (0..777).map(|i| i as f64 * 0.25).collect();
        let b: Vec<f32> = (0..333).map(|i| i as f32).collect();
        let a_bytes = ColumnData::from_f64("a", &a).bytes;
        let b_bytes = ColumnData::from_f32("b", &b).bytes;

        let file = std::fs::File::create(&path).unwrap();
        let mut w = ContainerWriter::new(
            std::io::BufWriter::new(file),
            ChunkExec::Inline(&StoreCodec),
        )
        .unwrap();
        w.begin_column("a", Precision::Double, 100).unwrap();
        for piece in a_bytes.chunks(13) {
            w.write(piece).unwrap();
        }
        w.commit().unwrap();
        assert_eq!(w.uncommitted_records(), 0);
        w.begin_column("b", Precision::Single, 50).unwrap();
        w.write(&b_bytes).unwrap();
        w.finish().unwrap();

        let read = read_container(&path).unwrap();
        assert!(read.is_clean());
        assert_eq!(read.table.columns.len(), 2);
        assert_eq!(
            read.table.columns[0].decode(&StoreCodec).unwrap().bytes,
            a_bytes
        );
        assert_eq!(
            read.table.columns[1].decode(&StoreCodec).unwrap().bytes,
            b_bytes
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tails_recover_and_committed_corruption_errors() {
        let path = tmp("torn");
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        write_container(&path, &StoreCodec, &[ColumnData::from_f64("x", &a)], 32).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Bad magic is an error — there is nothing to recover toward.
        let mut bad = good.clone();
        bad[0] = b'Z';
        assert!(parse_container(&bad).is_err());

        // Shaving the locator's last byte tears the tail but loses no
        // committed data: the commit record itself still validates.
        let read = parse_container(&good[..good.len() - 1]).unwrap();
        assert_eq!(
            read.outcome,
            RecoveryOutcome::Recovered { dropped_records: 0 }
        );
        assert_eq!(
            read.table.columns[0].decode(&StoreCodec).unwrap().bytes,
            ColumnData::from_f64("x", &a).bytes
        );

        // Garbage appended after the locator is a torn (unparseable) tail.
        let mut extra = good.clone();
        extra.push(0);
        let read = parse_container(&extra).unwrap();
        assert_eq!(
            read.outcome,
            RecoveryOutcome::Recovered { dropped_records: 1 }
        );

        // A bit flip inside a committed chunk record is corruption, not a
        // torn tail: typed checksum error.
        let mut flipped = good.clone();
        let first_chunk = take_record(&good, {
            // prologue: 4 + 1 + "store" + 4 crc; first record is COLUMN.
            let body_start = 4 + 1 + 5 + 4;
            take_record(&good, body_start).unwrap().end
        })
        .unwrap();
        assert_eq!(first_chunk.tag, TAG_CHUNK);
        let body_mid = (first_chunk.end - first_chunk.body.len() / 2) - 2;
        flipped[body_mid] ^= 0x40;
        assert!(matches!(
            parse_container(&flipped),
            Err(Error::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_misuse_is_rejected() {
        let mut w = ContainerWriter::new(Vec::new(), ChunkExec::Inline(&StoreCodec)).unwrap();
        // No open column.
        assert!(matches!(w.write(&[0u8; 8]), Err(Error::Unsupported(_))));
        // Bad page sizes.
        assert!(w.begin_column("x", Precision::Double, 0).is_err());
        // Mid-element tail.
        w.begin_column("x", Precision::Double, 4).unwrap();
        w.write(&[0u8; 9]).unwrap();
        assert!(matches!(w.end_column(), Err(Error::BadDescriptor(_))));
    }

    #[test]
    fn cursor_streams_pages_in_order_with_tiny_caps() {
        let path = tmp("cursor");
        let a: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let cols = [ColumnData::from_f64("x", &a)];
        write_container(&path, &StoreCodec, &cols, 64).unwrap();
        let table = read_container(&path).unwrap().table;
        let pool = WorkerPool::new(PoolConfig::with_threads(2).queue_depth(3));
        let codec: Arc<dyn Compressor> = Arc::new(StoreCodec);

        let col = &table.columns[0];
        let mut cursor = col.cursor(&pool, &codec).unwrap().max_in_flight(1);
        assert_eq!(cursor.chunks_remaining(), col.chunks.len());
        let mut restored = Vec::new();
        while let Some(page) = cursor.next_chunk().unwrap() {
            restored.extend_from_slice(page);
        }
        assert_eq!(restored, cols[0].bytes);
        assert_eq!(cursor.chunks_remaining(), 0);
        assert!(cursor.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_files_read_and_upgrade() {
        let v1 = tmp("legacy-v1");
        let v2 = tmp("legacy-v2");
        let a: Vec<f64> = (0..300).map(|i| i as f64 * 1.5).collect();
        let cols = [ColumnData::from_f64("x", &a)];
        legacy::write_container_v1(&v1, &StoreCodec, &cols, 128).unwrap();

        let read = read_container(&v1).unwrap();
        assert_eq!(read.outcome, RecoveryOutcome::Legacy);
        assert_eq!(
            read.table.columns[0].decode(&StoreCodec).unwrap().bytes,
            cols[0].bytes
        );

        upgrade_container(&v1, &v2).unwrap();
        let upgraded = read_container(&v2).unwrap();
        assert!(upgraded.is_clean());
        assert_eq!(upgraded.table.codec_name, "store");
        assert_eq!(
            upgraded.table.columns[0].decode(&StoreCodec).unwrap().bytes,
            cols[0].bytes
        );
        // Same compressed payloads, no recompression.
        assert_eq!(
            upgraded.table.columns[0].chunks,
            read.table.columns[0].chunks
        );
        std::fs::remove_file(&v1).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_container(Path::new("/nonexistent/fcbench-xyz")).unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }
}

//! Chunked columnar container — the on-disk half of the paper's simulated
//! database (§5.1.2, Figure 4).
//!
//! Mirrors how HDF5 stores a dataset: data arranged by field (column),
//! each column split into fixed-element **chunks** (disk pages), each
//! chunk passed through a compression filter. The reader can fetch and
//! decompress chunks independently, which is what the Table 11 "read"
//! primitive measures.
//!
//! File layout (little-endian):
//!
//! ```text
//! magic "FCDB"      4 bytes
//! codec name        u8 len + bytes
//! column count      u32
//! per column:
//!   name            u8 len + bytes
//!   precision       u8 (0 = f32, 1 = f64)
//!   rows            u64
//!   chunk elems     u32
//!   chunk count     u32
//!   chunk sizes     u64 × count
//! column payloads   concatenated chunks
//! ```

use fcbench_core::pool::{Ticket, WorkerPool};
use fcbench_core::{Compressor, DataDesc, Domain, Error, FloatData, Precision, Result};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"FCDB";

/// How container chunks are compressed/decompressed: inline on the caller
/// thread, or pipelined across the persistent [`WorkerPool`] engine.
pub enum ChunkExec<'a> {
    Inline(&'a dyn Compressor),
    Pooled(&'a WorkerPool, &'a Arc<dyn Compressor>),
}

impl ChunkExec<'_> {
    fn name(&self) -> &'static str {
        match self {
            ChunkExec::Inline(c) => c.info().name,
            ChunkExec::Pooled(_, c) => c.info().name,
        }
    }
}

/// One column to be written.
pub struct ColumnData {
    pub name: String,
    pub precision: Precision,
    /// Raw little-endian element bytes.
    pub bytes: Vec<u8>,
}

impl ColumnData {
    pub fn from_f64(name: impl Into<String>, values: &[f64]) -> Self {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        ColumnData {
            name: name.into(),
            precision: Precision::Double,
            bytes,
        }
    }

    pub fn from_f32(name: impl Into<String>, values: &[f32]) -> Self {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        ColumnData {
            name: name.into(),
            precision: Precision::Single,
            bytes,
        }
    }

    pub fn rows(&self) -> usize {
        self.bytes.len() / self.precision.bytes()
    }
}

/// Write `columns` to `path`, compressing each chunk with `codec`.
/// `chunk_elems` is the page size in elements (the Table 10 variable).
pub fn write_container(
    path: &Path,
    codec: &dyn Compressor,
    columns: &[ColumnData],
    chunk_elems: usize,
) -> Result<()> {
    write_container_with(path, &ChunkExec::Inline(codec), columns, chunk_elems)
}

/// [`write_container`] with chunk compression pipelined across the
/// persistent worker-pool engine: up to `queue_depth` pages are in flight
/// at once, collected in page order.
pub fn write_container_pooled(
    path: &Path,
    pool: &WorkerPool,
    codec: &Arc<dyn Compressor>,
    columns: &[ColumnData],
    chunk_elems: usize,
) -> Result<()> {
    write_container_with(path, &ChunkExec::Pooled(pool, codec), columns, chunk_elems)
}

/// Shared implementation behind both container writers.
pub fn write_container_with(
    path: &Path,
    exec: &ChunkExec<'_>,
    columns: &[ColumnData],
    chunk_elems: usize,
) -> Result<()> {
    assert!(chunk_elems > 0);
    let codec_name = exec.name().as_bytes();
    if codec_name.len() > 255 {
        return Err(Error::NameTooLong {
            len: codec_name.len(),
        });
    }
    let mut header = Vec::new();
    header.extend_from_slice(MAGIC);
    header.push(codec_name.len() as u8);
    header.extend_from_slice(codec_name);
    header.extend_from_slice(&(columns.len() as u32).to_le_bytes());

    // One input scratch and one payload buffer serve every chunk of every
    // column — the per-page compression loop allocates only for body growth.
    let mut scratch = FloatData::scratch();
    let mut payload = Vec::new();
    let mut body: Vec<u8> = Vec::new();
    for col in columns {
        let esize = col.precision.bytes();
        let rows = col.rows();
        let chunk_bytes = chunk_elems * esize;
        let nchunks = col.bytes.len().div_ceil(chunk_bytes).max(1);

        let name = col.name.as_bytes();
        header.push(name.len() as u8);
        header.extend_from_slice(name);
        header.push(match col.precision {
            Precision::Single => 0,
            Precision::Double => 1,
        });
        header.extend_from_slice(&(rows as u64).to_le_bytes());
        header.extend_from_slice(&(chunk_elems as u32).to_le_bytes());
        header.extend_from_slice(&(nchunks as u32).to_le_bytes());

        let mut sizes: Vec<u64> = Vec::with_capacity(nchunks);
        match exec {
            ChunkExec::Inline(codec) => {
                for chunk in col.bytes.chunks(chunk_bytes.max(esize)) {
                    let elems = chunk.len() / esize;
                    let desc = DataDesc::new(col.precision, vec![elems], Domain::Database)?;
                    scratch.refill_from_slice(&desc, chunk)?;
                    let n = codec.compress_into(&scratch, &mut payload)?;
                    sizes.push(n as u64);
                    body.extend_from_slice(&payload[..n]);
                }
            }
            ChunkExec::Pooled(pool, codec) => {
                // Pipelined: keep up to `queue_depth` pages in flight,
                // collected in page order so the directory and body stay
                // aligned; the drain closure applies the engine's
                // saturation discipline (never block while holding pages).
                let mut pending: VecDeque<Ticket> = VecDeque::new();
                let mut desc = DataDesc::new(col.precision, vec![1], Domain::Database)?;
                let mut first_err: Option<Error> = None;
                for chunk in col.bytes.chunks(chunk_bytes.max(esize)) {
                    desc.dims[0] = chunk.len() / esize;
                    let submitted = pool.submit_compress_draining(codec, &desc, chunk, || {
                        collect_page(&mut pending, &mut sizes, &mut body)
                    });
                    match submitted {
                        Ok(t) => pending.push_back(t),
                        Err(e) => {
                            first_err = Some(e);
                            break;
                        }
                    }
                }
                while !pending.is_empty() {
                    if let Err(e) = collect_page(&mut pending, &mut sizes, &mut body) {
                        let _ = first_err.get_or_insert(e);
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }
            }
        }
        for s in sizes {
            header.extend_from_slice(&s.to_le_bytes());
        }
    }

    let mut f = std::fs::File::create(path)?;
    f.write_all(&header)?;
    f.write_all(&body)?;
    f.sync_all()?;
    Ok(())
}

/// Collect the oldest in-flight page into the directory and body;
/// `false` when nothing is in flight.
fn collect_page(
    pending: &mut VecDeque<Ticket>,
    sizes: &mut Vec<u64>,
    body: &mut Vec<u8>,
) -> Result<bool> {
    let Some(ticket) = pending.pop_front() else {
        return Ok(false);
    };
    let n = ticket.collect(|p| {
        body.extend_from_slice(p);
        p.len()
    })?;
    sizes.push(n as u64);
    Ok(true)
}

/// A column read back from disk (still compressed).
#[derive(Debug)]
pub struct CompressedColumn {
    pub name: String,
    pub precision: Precision,
    pub rows: usize,
    pub chunk_elems: usize,
    /// Compressed chunk payloads.
    pub chunks: Vec<Vec<u8>>,
}

/// A parsed container (I/O done, decode pending).
#[derive(Debug)]
pub struct CompressedTable {
    pub codec_name: String,
    pub columns: Vec<CompressedColumn>,
}

/// Read the container file: this is the Table 11 **file I/O** primitive
/// (bytes land in memory; nothing is decompressed yet).
pub fn read_container(path: &Path) -> Result<CompressedTable> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    parse_container(&bytes)
}

fn parse_container(bytes: &[u8]) -> Result<CompressedTable> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let s = bytes
            .get(*pos..*pos + n)
            .ok_or_else(|| Error::Corrupt("container truncated".into()))?;
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(Error::Corrupt("bad container magic".into()));
    }
    let nlen = take(&mut pos, 1)?[0] as usize;
    let codec_name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
        .map_err(|_| Error::Corrupt("codec name not UTF-8".into()))?;
    let ncols = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;

    // Header pass: metadata + chunk sizes.
    struct Meta {
        name: String,
        precision: Precision,
        rows: usize,
        chunk_elems: usize,
        sizes: Vec<usize>,
    }
    let mut metas = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let nlen = take(&mut pos, 1)?[0] as usize;
        let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
            .map_err(|_| Error::Corrupt("column name not UTF-8".into()))?;
        let precision = match take(&mut pos, 1)?[0] {
            0 => Precision::Single,
            1 => Precision::Double,
            b => return Err(Error::Corrupt(format!("bad precision byte {b}"))),
        };
        let rows = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
        let chunk_elems = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        let nchunks = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        if chunk_elems == 0 || nchunks > rows.max(1) {
            return Err(Error::Corrupt("implausible chunk layout".into()));
        }
        let mut sizes = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            sizes.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize);
        }
        metas.push(Meta {
            name,
            precision,
            rows,
            chunk_elems,
            sizes,
        });
    }

    // Body pass: slice out chunk payloads.
    let mut columns = Vec::with_capacity(ncols);
    for m in metas {
        let mut chunks = Vec::with_capacity(m.sizes.len());
        for &sz in &m.sizes {
            chunks.push(take(&mut pos, sz)?.to_vec());
        }
        columns.push(CompressedColumn {
            name: m.name,
            precision: m.precision,
            rows: m.rows,
            chunk_elems: m.chunk_elems,
            chunks,
        });
    }
    if pos != bytes.len() {
        return Err(Error::Corrupt("trailing bytes in container".into()));
    }
    Ok(CompressedTable {
        codec_name,
        columns,
    })
}

impl CompressedColumn {
    /// Decode every chunk with `codec` — the Table 11 **decode** primitive.
    /// A single reused scratch container serves every chunk.
    pub fn decode(&self, codec: &dyn Compressor) -> Result<ColumnData> {
        let esize = self.precision.bytes();
        let mut scratch = FloatData::scratch();
        let mut bytes = Vec::with_capacity(self.rows * esize);
        let mut remaining = self.rows;
        for chunk in &self.chunks {
            let elems = remaining.min(self.chunk_elems);
            if elems == 0 {
                return Err(Error::Corrupt("more chunks than rows".into()));
            }
            let desc = DataDesc::new(self.precision, vec![elems], Domain::Database)?;
            codec.decompress_into(chunk, &desc, &mut scratch)?;
            bytes.extend_from_slice(scratch.bytes());
            remaining -= elems;
        }
        if remaining != 0 {
            return Err(Error::Corrupt("chunks do not cover all rows".into()));
        }
        Ok(ColumnData {
            name: self.name.clone(),
            precision: self.precision,
            bytes,
        })
    }

    /// [`decode`](Self::decode) with chunk decompression pipelined across
    /// the persistent worker-pool engine, collected in page order.
    pub fn decode_pooled(
        &self,
        pool: &WorkerPool,
        codec: &Arc<dyn Compressor>,
    ) -> Result<ColumnData> {
        let esize = self.precision.bytes();
        let mut bytes = Vec::with_capacity(self.rows * esize);
        let mut desc = DataDesc::new(self.precision, vec![1], Domain::Database)?;
        let mut pending: VecDeque<Ticket> = VecDeque::new();
        let mut first_err: Option<Error> = None;
        let mut remaining = self.rows;

        /// Append the oldest in-flight decoded page; `false` when nothing
        /// is in flight.
        fn collect_decoded(pending: &mut VecDeque<Ticket>, bytes: &mut Vec<u8>) -> Result<bool> {
            let Some(ticket) = pending.pop_front() else {
                return Ok(false);
            };
            ticket.collect(|decoded| bytes.extend_from_slice(decoded))?;
            Ok(true)
        }

        for chunk in &self.chunks {
            let elems = remaining.min(self.chunk_elems);
            if elems == 0 {
                first_err.get_or_insert(Error::Corrupt("more chunks than rows".into()));
                break;
            }
            desc.dims[0] = elems;
            // Same saturation discipline as the write side.
            let submitted = pool.submit_decompress_draining(codec, &desc, chunk, || {
                collect_decoded(&mut pending, &mut bytes)
            });
            match submitted {
                Ok(t) => pending.push_back(t),
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
            remaining -= elems;
        }
        while !pending.is_empty() {
            if let Err(e) = collect_decoded(&mut pending, &mut bytes) {
                let _ = first_err.get_or_insert(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if remaining != 0 {
            return Err(Error::Corrupt("chunks do not cover all rows".into()));
        }
        if bytes.len() != self.rows * esize {
            return Err(Error::Corrupt("reassembled column size mismatch".into()));
        }
        Ok(ColumnData {
            name: self.name.clone(),
            precision: self.precision,
            bytes,
        })
    }

    /// Total compressed bytes of this column.
    pub fn compressed_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};

    struct StoreCodec;

    impl Compressor for StoreCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "store",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fcbench-dbsim-{}-{name}", std::process::id()))
    }

    #[test]
    fn pooled_container_matches_inline_bytes_and_round_trips() {
        use fcbench_core::pool::PoolConfig;

        let inline_path = tmp("pool-a");
        let pooled_path = tmp("pool-b");
        let a: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..1234).map(|i| i as f32 * 0.5).collect();
        let cols = vec![
            ColumnData::from_f64("price", &a),
            ColumnData::from_f32("qty", &b),
        ];
        write_container(&inline_path, &StoreCodec, &cols, 100).unwrap();

        let pool = WorkerPool::new(PoolConfig::with_threads(3));
        let codec: Arc<dyn Compressor> = Arc::new(StoreCodec);
        write_container_pooled(&pooled_path, &pool, &codec, &cols, 100).unwrap();

        // Page-order collection means the pooled container is bit-identical.
        assert_eq!(
            std::fs::read(&inline_path).unwrap(),
            std::fs::read(&pooled_path).unwrap()
        );

        let table = read_container(&pooled_path).unwrap();
        for (col, orig) in table.columns.iter().zip(cols.iter()) {
            let inline = col.decode(&StoreCodec).unwrap();
            let pooled = col.decode_pooled(&pool, &codec).unwrap();
            assert_eq!(inline.bytes, orig.bytes);
            assert_eq!(pooled.bytes, orig.bytes);
        }
        std::fs::remove_file(&inline_path).ok();
        std::fs::remove_file(&pooled_path).ok();
    }

    #[test]
    fn container_round_trip() {
        let path = tmp("rt");
        let a: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f32> = (0..500).map(|i| i as f32).collect();
        let cols = vec![
            ColumnData::from_f64("price", &a),
            ColumnData::from_f32("qty", &b),
        ];
        write_container(&path, &StoreCodec, &cols, 128).unwrap();

        let table = read_container(&path).unwrap();
        assert_eq!(table.codec_name, "store");
        assert_eq!(table.columns.len(), 2);
        assert_eq!(table.columns[0].rows, 1000);
        assert_eq!(table.columns[1].rows, 500);
        // 1000 rows at 128 elems/chunk => 8 chunks.
        assert_eq!(table.columns[0].chunks.len(), 8);

        let col0 = table.columns[0].decode(&StoreCodec).unwrap();
        assert_eq!(col0.bytes, cols[0].bytes);
        let col1 = table.columns[1].decode(&StoreCodec).unwrap();
        assert_eq!(col1.bytes, cols[1].bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ragged_last_chunk() {
        let path = tmp("ragged");
        let a: Vec<f64> = (0..130).map(|i| i as f64).collect();
        write_container(&path, &StoreCodec, &[ColumnData::from_f64("x", &a)], 64).unwrap();
        let table = read_container(&path).unwrap();
        assert_eq!(table.columns[0].chunks.len(), 3); // 64 + 64 + 2
        let col = table.columns[0].decode(&StoreCodec).unwrap();
        assert_eq!(col.rows(), 130);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_rejected() {
        let path = tmp("corrupt");
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        write_container(&path, &StoreCodec, &[ColumnData::from_f64("x", &a)], 32).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'Z';
        assert!(parse_container(&bytes).is_err());
        let good = std::fs::read(&path).unwrap();
        assert!(parse_container(&good[..good.len() - 1]).is_err());
        let mut extra = good.clone();
        extra.push(0);
        assert!(parse_container(&extra).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_container(Path::new("/nonexistent/fcbench-xyz")).unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }
}

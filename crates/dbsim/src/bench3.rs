//! The three-primitive micro-benchmark of §5.1.2 / Table 11:
//! file I/O → decode → full-table-scan query, each timed separately.

use crate::container::{
    read_container, write_container, write_container_pooled, ColumnData, CompressedColumn,
    RecoveryOutcome,
};
use crate::dataframe::DataFrame;
use fcbench_core::pool::WorkerPool;
use fcbench_core::{Compressor, Result};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Timed result of one end-to-end pass (all times in seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreePrimitives {
    /// Reading compressed chunks from disk into memory.
    pub io_seconds: f64,
    /// Decompressing every chunk into dataframe columns.
    pub decode_seconds: f64,
    /// Ten histogram-driven full table scans.
    pub query_seconds: f64,
    /// Compressed size on disk (bytes).
    pub compressed_bytes: u64,
    /// Scan checksum (total matched rows), for verification.
    pub scan_checksum: usize,
    /// How the container read arrived at its table (`Clean` for a file
    /// that was just written; `Recovered`/`Legacy` are possible when
    /// measuring a pre-existing path).
    pub recovery: RecoveryOutcome,
}

impl ThreePrimitives {
    /// The Table 11 "read" column: I/O + decode.
    pub fn read_seconds(&self) -> f64 {
        self.io_seconds + self.decode_seconds
    }
}

/// Write `columns` through `codec` at `chunk_elems`, then measure the
/// three primitives by reading it back.
pub fn measure_three_primitives(
    path: &Path,
    codec: &dyn Compressor,
    columns: &[ColumnData],
    chunk_elems: usize,
) -> Result<ThreePrimitives> {
    write_container(path, codec, columns, chunk_elems)?;
    measure_read_side(path, |col| col.decode(codec))
}

/// [`measure_three_primitives`] with both the write and the decode
/// primitive pipelined across the persistent worker-pool engine — what a
/// database integration running on the execution engine would measure.
pub fn measure_three_primitives_pooled(
    path: &Path,
    pool: &WorkerPool,
    codec: &Arc<dyn Compressor>,
    columns: &[ColumnData],
    chunk_elems: usize,
) -> Result<ThreePrimitives> {
    write_container_pooled(path, pool, codec, columns, chunk_elems)?;
    measure_read_side(path, |col| col.decode_pooled(pool, codec))
}

/// Time the three read-side primitives with the given per-column decoder.
fn measure_read_side(
    path: &Path,
    decode_col: impl Fn(&CompressedColumn) -> Result<ColumnData>,
) -> Result<ThreePrimitives> {
    let t0 = Instant::now();
    let read = read_container(path)?;
    let io_seconds = t0.elapsed().as_secs_f64();
    let recovery = read.outcome;
    let table = read.table;
    let compressed_bytes: u64 = table
        .columns
        .iter()
        .map(|c| c.compressed_bytes() as u64)
        .sum();

    let t1 = Instant::now();
    let mut decoded = Vec::with_capacity(table.columns.len());
    for col in &table.columns {
        decoded.push(decode_col(col)?);
    }
    let decode_seconds = t1.elapsed().as_secs_f64();

    let df = DataFrame::from_columns(decoded)?;
    let t2 = Instant::now();
    let scan_checksum = df.run_scan_benchmark();
    let query_seconds = t2.elapsed().as_secs_f64();

    Ok(ThreePrimitives {
        io_seconds,
        decode_seconds,
        query_seconds,
        compressed_bytes,
        scan_checksum,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::{
        CodecClass, CodecInfo, Community, DataDesc, FloatData, Platform, PrecisionSupport,
    };

    struct StoreCodec;

    impl Compressor for StoreCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "store",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    #[test]
    fn primitives_are_measured_and_consistent() {
        let path = std::env::temp_dir().join(format!("fcbench-bench3-{}", std::process::id()));
        let a: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64).collect();
        let cols = vec![ColumnData::from_f64("a", &a)];
        let r = measure_three_primitives(&path, &StoreCodec, &cols, 1024).unwrap();
        assert!(r.io_seconds >= 0.0);
        assert!(r.decode_seconds >= 0.0);
        assert!(r.query_seconds >= 0.0);
        assert_eq!(r.compressed_bytes, 10_000 * 8);
        // Histogram over values 0..=99: 10 scans of increasing selectivity.
        assert!(r.scan_checksum > 0);
        assert!((r.read_seconds() - r.io_seconds - r.decode_seconds).abs() < 1e-12);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pooled_primitives_agree_with_inline() {
        use fcbench_core::pool::{PoolConfig, WorkerPool};
        let p1 = std::env::temp_dir().join(format!("fcbench-bench3p-{}", std::process::id()));
        let a: Vec<f64> = (0..5_000).map(|i| (i % 100) as f64).collect();
        let cols = vec![ColumnData::from_f64("a", &a)];
        let inline = measure_three_primitives(&p1, &StoreCodec, &cols, 512).unwrap();

        let pool = WorkerPool::new(PoolConfig::with_threads(2));
        let codec: Arc<dyn Compressor> = Arc::new(StoreCodec);
        let pooled = measure_three_primitives_pooled(&p1, &pool, &codec, &cols, 512).unwrap();
        assert_eq!(pooled.compressed_bytes, inline.compressed_bytes);
        assert_eq!(pooled.scan_checksum, inline.scan_checksum);
        std::fs::remove_file(&p1).ok();
    }
}

//! In-memory dataframe and the scan-query engine — the Pandas half of the
//! paper's simulated database (§5.1.2, Figure 4).
//!
//! The Table 11 **query** primitive is a set of full table scans
//! `df.loc[df.A <= v_i]` where the `v_i` come from a 10-bin histogram of
//! column A (footnote 14). Both are implemented here.

use crate::container::ColumnData;
use fcbench_core::{Error, Precision, Result};

/// A typed in-memory column.
#[derive(Debug, Clone)]
pub enum Column {
    F32(Vec<f32>),
    F64(Vec<f64>),
}

impl Column {
    pub fn len(&self) -> usize {
        match self {
            Column::F32(v) => v.len(),
            Column::F64(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `i` widened to f64.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            Column::F32(v) => v[i] as f64,
            Column::F64(v) => v[i],
        }
    }
}

/// An in-memory table of named columns (all the same length).
#[derive(Debug)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl DataFrame {
    /// Build from decoded container columns.
    pub fn from_columns(cols: Vec<ColumnData>) -> Result<DataFrame> {
        let mut names = Vec::with_capacity(cols.len());
        let mut columns = Vec::with_capacity(cols.len());
        let mut rows: Option<usize> = None;
        for c in cols {
            let col = match c.precision {
                Precision::Single => Column::F32(
                    c.bytes
                        .chunks_exact(4)
                        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                        .collect(),
                ),
                Precision::Double => Column::F64(
                    c.bytes
                        .chunks_exact(8)
                        .map(|b| {
                            f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
                        })
                        .collect(),
                ),
            };
            if let Some(r) = rows {
                if col.len() != r {
                    return Err(Error::BadDescriptor(format!(
                        "column {} has {} rows, expected {r}",
                        c.name,
                        col.len()
                    )));
                }
            } else {
                rows = Some(col.len());
            }
            names.push(c.name);
            columns.push(col);
        }
        Ok(DataFrame { names, columns })
    }

    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(&self.columns[i])
    }

    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Histogram edges of `col` with `bins` equal-width bins; returns the
    /// `bins` upper edges used as scan predicates (footnote 14's `v_i`).
    pub fn histogram_edges(&self, col: &Column, bins: usize) -> Vec<f64> {
        assert!(bins >= 1);
        let n = col.len();
        if n == 0 {
            return Vec::new();
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let v = col.get(i);
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Vec::new();
        }
        let width = (hi - lo) / bins as f64;
        (1..=bins).map(|k| lo + width * k as f64).collect()
    }

    /// Full table scan `col <= v`: count of matching rows (the selected
    /// rows would be materialized by Pandas; counting exercises the same
    /// per-row predicate work without allocation noise).
    pub fn scan_le(&self, col: &Column, v: f64) -> usize {
        let mut hits = 0usize;
        for i in 0..col.len() {
            if col.get(i) <= v {
                hits += 1;
            }
        }
        hits
    }

    /// Aggregation with a predicate: sum of `col` over rows where
    /// `col <= v` (the second primitive class BUFF's §3.3 speedup claim
    /// covers: "selective and aggregation filtering").
    pub fn agg_sum_le(&self, col: &Column, v: f64) -> f64 {
        let mut sum = 0.0;
        for i in 0..col.len() {
            let x = col.get(i);
            if x <= v {
                sum += x;
            }
        }
        sum
    }

    /// Mean of `col` over rows where `col <= v`; `None` if nothing matches.
    pub fn agg_mean_le(&self, col: &Column, v: f64) -> Option<f64> {
        let hits = self.scan_le(col, v);
        if hits == 0 {
            None
        } else {
            Some(self.agg_sum_le(col, v) / hits as f64)
        }
    }

    /// The paper's full query benchmark: 10-bin histogram of the first
    /// column, then one scan per edge. Returns total matched rows (used
    /// as a checksum so the work cannot be optimized away).
    pub fn run_scan_benchmark(&self) -> usize {
        let Some(col) = self.columns.first() else {
            return 0;
        };
        let edges = self.histogram_edges(col, 10);
        edges.iter().map(|&v| self.scan_le(col, v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f32> = (0..100).map(|i| (i * 2) as f32).collect();
        DataFrame::from_columns(vec![
            ColumnData::from_f64("a", &a),
            ColumnData::from_f32("b", &b),
        ])
        .unwrap()
    }

    #[test]
    fn shape_and_lookup() {
        let d = df();
        assert_eq!(d.n_rows(), 100);
        assert_eq!(d.n_cols(), 2);
        assert!(d.column("a").is_some());
        assert!(d.column("b").is_some());
        assert!(d.column("z").is_none());
        assert_eq!(d.column_names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn mismatched_columns_rejected() {
        let a: Vec<f64> = vec![1.0, 2.0];
        let b: Vec<f64> = vec![1.0];
        let err = DataFrame::from_columns(vec![
            ColumnData::from_f64("a", &a),
            ColumnData::from_f64("b", &b),
        ])
        .unwrap_err();
        assert!(matches!(err, Error::BadDescriptor(_)));
    }

    #[test]
    fn scan_counts_match_manual_filter() {
        let d = df();
        let a = d.column("a").unwrap();
        assert_eq!(d.scan_le(a, 49.0), 50);
        assert_eq!(d.scan_le(a, -1.0), 0);
        assert_eq!(d.scan_le(a, 1000.0), 100);
    }

    #[test]
    fn histogram_edges_span_range() {
        let d = df();
        let a = d.column("a").unwrap();
        let edges = d.histogram_edges(a, 10);
        assert_eq!(edges.len(), 10);
        assert!((edges[9] - 99.0).abs() < 1e-9, "last edge = max");
        assert!((edges[0] - 9.9).abs() < 1e-9);
        // Edges are increasing.
        for w in edges.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn scan_benchmark_is_deterministic_and_plausible() {
        let d = df();
        let total = d.run_scan_benchmark();
        // Sum over 10 edges of counts 10,20,...,100 = 550.
        assert_eq!(total, 550);
        assert_eq!(d.run_scan_benchmark(), total);
    }

    #[test]
    fn aggregations_match_manual_computation() {
        let d = df();
        let a = d.column("a").unwrap();
        // sum of 0..=49 = 1225; mean = 24.5
        assert!((d.agg_sum_le(a, 49.0) - 1225.0).abs() < 1e-9);
        assert!((d.agg_mean_le(a, 49.0).unwrap() - 24.5).abs() < 1e-9);
        assert!(d.agg_mean_le(a, -5.0).is_none());
        assert!((d.agg_sum_le(a, 1e9) - 4950.0).abs() < 1e-9);
    }

    #[test]
    fn nan_values_are_skipped_in_histogram() {
        let mut vals = vec![1.0f64, 2.0, 3.0];
        vals.push(f64::NAN);
        let d = DataFrame::from_columns(vec![ColumnData::from_f64("x", &vals)]).unwrap();
        let x = d.column("x").unwrap();
        let edges = d.histogram_edges(x, 2);
        assert_eq!(edges.len(), 2);
        assert!((edges[1] - 3.0).abs() < 1e-9);
    }
}

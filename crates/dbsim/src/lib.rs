//! # fcbench-dbsim
//!
//! The paper's simulated in-memory database (§5.1.2, Figure 4): an
//! HDF5-style chunked columnar [container] on disk, an
//! in-memory [dataframe] with histogram-driven full-table
//! scans, and the [three-primitive timer](bench3) (file I/O, decode,
//! query) behind Table 11 and the block-size study of Table 10.
//!
//! As the paper notes, this deliberately oversimplifies a real database —
//! no joins, no updates — to "bypass the substantial engineering efforts
//! needed to integrate compressors into an actual database system".

#![forbid(unsafe_code)]

pub mod bench3;
pub mod container;
pub mod dataframe;

/// The crate-wide telemetry registry: container write/commit timing,
/// crash-recovery outcomes, and cursor read-ahead behaviour all land
/// here, so one exposition dump covers the whole database-scenario
/// layer. (Free functions like [`read_container`] have no engine handle
/// to hang metrics off, hence a process-wide registry rather than a
/// per-pool one.)
pub mod metrics {
    use fcbench_telemetry::Registry;
    use std::sync::{Arc, LazyLock};

    static REGISTRY: LazyLock<Arc<Registry>> = LazyLock::new(|| Arc::new(Registry::new()));

    /// The process-wide dbsim registry.
    pub fn registry() -> &'static Arc<Registry> {
        &REGISTRY
    }
}

pub use bench3::{measure_three_primitives, measure_three_primitives_pooled, ThreePrimitives};
pub use container::{
    legacy, parse_container, read_container, upgrade_container, write_container,
    write_container_pooled, ChunkExec, ColumnCursor, ColumnData, CompressedColumn, CompressedTable,
    ContainerRead, ContainerWriter, RecoveryOutcome,
};
pub use dataframe::{Column, DataFrame};

//! # fcbench-dbsim
//!
//! The paper's simulated in-memory database (§5.1.2, Figure 4): an
//! HDF5-style chunked columnar [container] on disk, an
//! in-memory [dataframe] with histogram-driven full-table
//! scans, and the [three-primitive timer](bench3) (file I/O, decode,
//! query) behind Table 11 and the block-size study of Table 10.
//!
//! As the paper notes, this deliberately oversimplifies a real database —
//! no joins, no updates — to "bypass the substantial engineering efforts
//! needed to integrate compressors into an actual database system".

#![forbid(unsafe_code)]

pub mod bench3;
pub mod container;
pub mod dataframe;

pub use bench3::{measure_three_primitives, measure_three_primitives_pooled, ThreePrimitives};
pub use container::{
    legacy, parse_container, read_container, upgrade_container, write_container,
    write_container_pooled, ChunkExec, ColumnCursor, ColumnData, CompressedColumn, CompressedTable,
    ContainerRead, ContainerWriter, RecoveryOutcome,
};
pub use dataframe::{Column, DataFrame};

//! Property tests for the dataset substrate: generation is total,
//! deterministic, and scale-consistent for every catalog entry.

use fcbench_datasets::{catalog, generate, scaled_target, value_entropy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_total_and_shape_consistent(
        which in 0usize..33,
        target in 512usize..8192,
    ) {
        let spec = &catalog()[which];
        let data = generate(spec, target);
        prop_assert_eq!(data.desc().precision, spec.precision);
        prop_assert_eq!(data.desc().domain, spec.domain);
        prop_assert_eq!(data.desc().ndims(), spec.paper_dims.len());
        prop_assert_eq!(data.bytes().len(), data.desc().byte_len());
        // Scaled size lands near the request (dims rounding allowed).
        let n = data.elements();
        prop_assert!(n >= target / 8 && n <= target * 4, "{}: {n} vs {target}", spec.name);
    }

    #[test]
    fn generation_is_deterministic_per_spec(which in 0usize..33) {
        let spec = &catalog()[which];
        let a = generate(spec, 2048);
        let b = generate(spec, 2048);
        prop_assert_eq!(a.bytes(), b.bytes());
    }

    #[test]
    fn entropy_never_exceeds_capacity(which in 0usize..33) {
        let spec = &catalog()[which];
        let data = generate(spec, 4096);
        let h = value_entropy(&data);
        let cap = (data.elements() as f64).log2();
        prop_assert!(h <= cap + 1e-9, "{}: H {h} > capacity {cap}", spec.name);
        prop_assert!(h >= 0.0);
        // scaled_target is the documented validation bound.
        let _ = scaled_target(spec.paper_entropy, data.elements());
    }
}

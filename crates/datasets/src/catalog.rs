//! The 33-dataset catalog of Table 3, with the paper's byte sizes,
//! per-element lane entropies, and extents, plus the scaling rule that
//! maps each dataset to a laptop-sized synthetic instance.

use fcbench_core::{Domain, Precision};

/// Statistical family a generator draws from (drives
/// [`crate::gen`]'s dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// 1-D instrument/simulation traces (msg-bt, num-*).
    HpcTrace,
    /// Smooth multidimensional simulation fields.
    SmoothField,
    /// Mostly-empty field with localized structures (astro-mhd).
    SparseField,
    /// High-entropy particle/turbulence field.
    NoisyField,
    /// Rounded-decimal sensor series (citytemp, gas-price).
    DecimalSeries,
    /// Random-walk sensor table with interleaved channels.
    SensorTable,
    /// High-entropy market table (jane-street).
    MarketTable,
    /// Astronomical image: flat background + point sources.
    AstroImage,
    /// HDR photograph: smooth gradients, low precision.
    HdrImage,
    /// TPC-style transaction columns (prices, quantities, rates).
    TpcTable,
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    pub domain: Domain,
    pub precision: Precision,
    /// Original size in bytes (Table 3).
    pub paper_bytes: u64,
    /// Per-element lane entropy reported in Table 3 (bits).
    pub paper_entropy: f64,
    /// Original extent (Table 3), slowest-varying first.
    pub paper_dims: &'static [usize],
    /// Generator family.
    pub family: Family,
}

impl DatasetSpec {
    /// Elements in the original dataset.
    pub fn paper_elements(&self) -> usize {
        self.paper_dims.iter().product()
    }

    /// Scaled extent holding roughly `target_elems` elements while
    /// preserving the dimensional structure:
    /// tables keep their column count; grids shrink isotropically.
    pub fn scaled_dims(&self, target_elems: usize) -> Vec<usize> {
        let total = self.paper_elements();
        if total <= target_elems {
            return self.paper_dims.to_vec();
        }
        match self.paper_dims.len() {
            1 => vec![target_elems],
            2 => {
                let cols = self.paper_dims[1];
                if cols <= 256 {
                    // A table: keep columns, scale rows.
                    vec![(target_elems / cols).max(1), cols]
                } else {
                    // An image: isotropic shrink.
                    let ratio = (target_elems as f64 / total as f64).sqrt();
                    let h = ((self.paper_dims[0] as f64 * ratio) as usize).max(8);
                    let w = ((self.paper_dims[1] as f64 * ratio) as usize).max(8);
                    vec![h, w]
                }
            }
            _ => {
                let ratio = (target_elems as f64 / total as f64).cbrt();
                self.paper_dims
                    .iter()
                    .map(|&d| ((d as f64 * ratio) as usize).max(4))
                    .collect()
            }
        }
    }
}

/// All 33 datasets of Table 3, in the paper's order.
pub fn catalog() -> Vec<DatasetSpec> {
    use Domain::*;
    use Family::*;
    use Precision::*;
    vec![
        DatasetSpec {
            name: "msg-bt",
            domain: Hpc,
            precision: Double,
            paper_bytes: 266_389_432,
            paper_entropy: 23.67,
            paper_dims: &[33_298_679],
            family: HpcTrace,
        },
        DatasetSpec {
            name: "num-brain",
            domain: Hpc,
            precision: Double,
            paper_bytes: 141_840_000,
            paper_entropy: 23.97,
            paper_dims: &[17_730_000],
            family: HpcTrace,
        },
        DatasetSpec {
            name: "num-control",
            domain: Hpc,
            precision: Double,
            paper_bytes: 159_504_744,
            paper_entropy: 24.14,
            paper_dims: &[19_938_093],
            family: HpcTrace,
        },
        DatasetSpec {
            name: "rsim",
            domain: Hpc,
            precision: Single,
            paper_bytes: 94_281_728,
            paper_entropy: 18.50,
            paper_dims: &[2048, 11_509],
            family: SmoothField,
        },
        DatasetSpec {
            name: "astro-mhd",
            domain: Hpc,
            precision: Double,
            paper_bytes: 548_458_560,
            paper_entropy: 0.97,
            paper_dims: &[130, 514, 1026],
            family: SparseField,
        },
        DatasetSpec {
            name: "astro-pt",
            domain: Hpc,
            precision: Double,
            paper_bytes: 671_088_640,
            paper_entropy: 26.32,
            paper_dims: &[512, 256, 640],
            family: NoisyField,
        },
        DatasetSpec {
            name: "miranda3d",
            domain: Hpc,
            precision: Single,
            paper_bytes: 4_294_967_296,
            paper_entropy: 23.08,
            paper_dims: &[1024, 1024, 1024],
            family: SmoothField,
        },
        DatasetSpec {
            name: "turbulence",
            domain: Hpc,
            precision: Single,
            paper_bytes: 67_108_864,
            paper_entropy: 23.73,
            paper_dims: &[256, 256, 256],
            family: NoisyField,
        },
        DatasetSpec {
            name: "wave",
            domain: Hpc,
            precision: Single,
            paper_bytes: 536_870_912,
            paper_entropy: 25.27,
            paper_dims: &[512, 512, 512],
            family: NoisyField,
        },
        DatasetSpec {
            name: "hurricane",
            domain: Hpc,
            precision: Single,
            paper_bytes: 100_000_000,
            paper_entropy: 23.54,
            paper_dims: &[100, 500, 500],
            family: SmoothField,
        },
        DatasetSpec {
            name: "citytemp",
            domain: TimeSeries,
            precision: Single,
            paper_bytes: 11_625_304,
            paper_entropy: 9.43,
            paper_dims: &[2_906_326],
            family: DecimalSeries,
        },
        DatasetSpec {
            name: "ts-gas",
            domain: TimeSeries,
            precision: Single,
            paper_bytes: 307_452_800,
            paper_entropy: 13.94,
            paper_dims: &[76_863_200],
            family: DecimalSeries,
        },
        DatasetSpec {
            name: "phone-gyro",
            domain: TimeSeries,
            precision: Double,
            paper_bytes: 334_383_168,
            paper_entropy: 14.77,
            paper_dims: &[13_932_632, 3],
            family: SensorTable,
        },
        DatasetSpec {
            name: "wesad-chest",
            domain: TimeSeries,
            precision: Double,
            paper_bytes: 272_339_200,
            paper_entropy: 13.85,
            paper_dims: &[4_255_300, 8],
            family: SensorTable,
        },
        DatasetSpec {
            name: "jane-street",
            domain: TimeSeries,
            precision: Double,
            paper_bytes: 1_810_997_760,
            paper_entropy: 26.07,
            paper_dims: &[1_664_520, 136],
            family: MarketTable,
        },
        DatasetSpec {
            name: "nyc-taxi",
            domain: TimeSeries,
            precision: Double,
            paper_bytes: 713_711_376,
            paper_entropy: 13.17,
            paper_dims: &[12_744_846, 7],
            family: SensorTable,
        },
        DatasetSpec {
            name: "gas-price",
            domain: TimeSeries,
            precision: Double,
            paper_bytes: 886_619_664,
            paper_entropy: 8.66,
            paper_dims: &[36_942_486, 3],
            family: DecimalSeries,
        },
        DatasetSpec {
            name: "solar-wind",
            domain: TimeSeries,
            precision: Single,
            paper_bytes: 423_980_536,
            paper_entropy: 14.06,
            paper_dims: &[7_571_081, 14],
            family: SensorTable,
        },
        DatasetSpec {
            name: "acs-wht",
            domain: Observation,
            precision: Single,
            paper_bytes: 225_000_000,
            paper_entropy: 20.13,
            paper_dims: &[7500, 7500],
            family: AstroImage,
        },
        DatasetSpec {
            name: "hdr-night",
            domain: Observation,
            precision: Single,
            paper_bytes: 536_870_912,
            paper_entropy: 9.03,
            paper_dims: &[8192, 16_384],
            family: HdrImage,
        },
        DatasetSpec {
            name: "hdr-palermo",
            domain: Observation,
            precision: Single,
            paper_bytes: 843_454_592,
            paper_entropy: 9.34,
            paper_dims: &[10_268, 20_536],
            family: HdrImage,
        },
        DatasetSpec {
            name: "hst-wfc3-uvis",
            domain: Observation,
            precision: Single,
            paper_bytes: 108_924_760,
            paper_entropy: 15.61,
            paper_dims: &[5329, 5110],
            family: AstroImage,
        },
        DatasetSpec {
            name: "hst-wfc3-ir",
            domain: Observation,
            precision: Single,
            paper_bytes: 24_015_312,
            paper_entropy: 15.04,
            paper_dims: &[2484, 2417],
            family: AstroImage,
        },
        DatasetSpec {
            name: "spitzer-irac",
            domain: Observation,
            precision: Single,
            paper_bytes: 164_989_536,
            paper_entropy: 20.54,
            paper_dims: &[6456, 6389],
            family: AstroImage,
        },
        DatasetSpec {
            name: "g24-78-usb",
            domain: Observation,
            precision: Single,
            paper_bytes: 1_335_668_264,
            paper_entropy: 26.02,
            paper_dims: &[2426, 371, 371],
            family: NoisyField,
        },
        DatasetSpec {
            name: "jws-mirimage",
            domain: Observation,
            precision: Single,
            paper_bytes: 169_082_880,
            paper_entropy: 23.16,
            paper_dims: &[40, 1024, 1032],
            family: NoisyField,
        },
        DatasetSpec {
            name: "tpcH-order",
            domain: Database,
            precision: Double,
            paper_bytes: 120_000_000,
            paper_entropy: 23.40,
            paper_dims: &[15_000_000],
            family: TpcTable,
        },
        DatasetSpec {
            name: "tpcxBB-store",
            domain: Database,
            precision: Double,
            paper_bytes: 789_920_928,
            paper_entropy: 16.73,
            paper_dims: &[8_228_343, 12],
            family: TpcTable,
        },
        DatasetSpec {
            name: "tpcxBB-web",
            domain: Database,
            precision: Double,
            paper_bytes: 986_782_680,
            paper_entropy: 17.64,
            paper_dims: &[8_223_189, 15],
            family: TpcTable,
        },
        DatasetSpec {
            name: "tpcH-lineitem",
            domain: Database,
            precision: Single,
            paper_bytes: 959_776_816,
            paper_entropy: 8.87,
            paper_dims: &[59_986_051, 4],
            family: TpcTable,
        },
        DatasetSpec {
            name: "tpcDS-catalog",
            domain: Database,
            precision: Single,
            paper_bytes: 172_803_480,
            paper_entropy: 17.34,
            paper_dims: &[2_880_058, 15],
            family: TpcTable,
        },
        DatasetSpec {
            name: "tpcDS-store",
            domain: Database,
            precision: Single,
            paper_bytes: 276_515_952,
            paper_entropy: 15.17,
            paper_dims: &[5_760_749, 12],
            family: TpcTable,
        },
        DatasetSpec {
            name: "tpcDS-web",
            domain: Database,
            precision: Single,
            paper_bytes: 86_354_820,
            paper_entropy: 17.33,
            paper_dims: &[1_439_247, 15],
            family: TpcTable,
        },
    ]
}

/// Look up a dataset by name.
pub fn find(name: &str) -> Option<DatasetSpec> {
    catalog().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_33_rows() {
        assert_eq!(catalog().len(), 33);
    }

    #[test]
    fn domain_counts_match_table3() {
        let cat = catalog();
        let count = |d: Domain| cat.iter().filter(|s| s.domain == d).count();
        assert_eq!(count(Domain::Hpc), 10);
        assert_eq!(count(Domain::TimeSeries), 8);
        assert_eq!(count(Domain::Observation), 8);
        assert_eq!(count(Domain::Database), 7);
    }

    #[test]
    fn sizes_are_consistent_with_extents() {
        for spec in catalog() {
            let implied = spec.paper_elements() as u64 * spec.precision.bytes() as u64;
            assert_eq!(
                implied, spec.paper_bytes,
                "{}: extent x element size must equal Table 3 bytes",
                spec.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let cat = catalog();
        let mut names: Vec<&str> = cat.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 33);
    }

    #[test]
    fn find_works() {
        assert!(find("msg-bt").is_some());
        assert!(find("jane-street").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn scaling_preserves_structure() {
        let spec = find("astro-mhd").unwrap();
        let dims = spec.scaled_dims(250_000);
        assert_eq!(dims.len(), 3);
        let total: usize = dims.iter().product();
        assert!((100_000..=400_000).contains(&total), "total {total}");

        let table = find("jane-street").unwrap();
        let dims = table.scaled_dims(250_000);
        assert_eq!(dims[1], 136, "tables keep their column count");

        let image = find("acs-wht").unwrap();
        let dims = image.scaled_dims(250_000);
        assert_eq!(dims.len(), 2);
        // Aspect ratio preserved (square stays square).
        let ratio = dims[0] as f64 / dims[1] as f64;
        assert!((ratio - 1.0).abs() < 0.05);
    }

    #[test]
    fn scaling_never_upscales() {
        for spec in catalog() {
            let dims = spec.scaled_dims(1 << 40);
            assert_eq!(dims, spec.paper_dims.to_vec());
        }
    }
}

//! Synthetic generators for the 33 FCBench datasets.
//!
//! Each generator reproduces the *statistical structure* its compressors
//! exploit (DESIGN.md documents the substitution): domain-typical spatial
//! or temporal correlation, the Table 3 value-entropy target (capped by
//! the scaled element count), and — critically for BUFF — whether values
//! are exactly representable at a bounded decimal precision. Table 4
//! shows BUFF succeeding on every dataset except `hurricane`, so all
//! generators except hurricane's quantize to a per-dataset decimal step.
//!
//! Generation is deterministic: the RNG is seeded from the dataset name.

use crate::catalog::{DatasetSpec, Family};
use fcbench_core::{FloatData, Precision};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How raw values are discretized.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Quant {
    /// Round to `d` decimal digits: values are exactly representable at a
    /// bounded decimal precision (BUFF succeeds with small fields).
    Decimal(u32),
    /// Snap to an arbitrary float grid of `levels` steps across the range:
    /// controls distinct-value entropy *without* decimal exactness. On
    /// fp32 data BUFF still succeeds — any moderate f32 round-trips
    /// through 10 decimals within f32 precision — but only at its maximal
    /// 35-bit budget, reproducing the paper's ≤ 1.0 BUFF cells on
    /// observation/science fp32 data.
    Grid(u64),
    /// Snap to `levels` steps whose step size is itself a `d`-decimal
    /// value: low cardinality (entropy) *and* bounded decimal precision
    /// (BUFF field width) are controlled independently — e.g. gas-price's
    /// 400 distinct values that still need 5-6 decimal digits.
    DecimalGrid(u32, u64),
    /// No discretization (only `hurricane`, whose NaN fill breaks BUFF).
    None,
}

/// Per-dataset value model: discretization and value range.
#[derive(Debug, Clone, Copy)]
struct Tuning {
    quant: Quant,
    lo: f64,
    hi: f64,
}

/// The value-model table. Ranges × 10^decimals approximate the Table 3
/// distinct-value entropy (see DESIGN.md); saturated datasets (entropy ≈
/// log₂ N in the paper) get supports far above any scaled element count.
fn tuning(name: &str) -> Tuning {
    let dec = |d: u32, lo: f64, hi: f64| Tuning {
        quant: Quant::Decimal(d),
        lo,
        hi,
    };
    let grid = |levels: u64, lo: f64, hi: f64| Tuning {
        quant: Quant::Grid(levels),
        lo,
        hi,
    };
    let dgrid = |d: u32, levels: u64, lo: f64, hi: f64| Tuning {
        quant: Quant::DecimalGrid(d, levels),
        lo,
        hi,
    };
    match name {
        // fp64 datasets must be decimal-exact (BUFF succeeds in Table 4);
        // fp32 science/observation data sits on arbitrary float grids
        // (BUFF succeeds only at its 35-bit budget, CR <= ~1).
        "msg-bt" => dec(6, -500.0, 500.0),
        "num-brain" => dec(4, -800.0, 800.0),
        "num-control" => dec(4, -1000.0, 1000.0),
        "rsim" => grid(370_000, -18_000.0, 18_000.0),
        "astro-mhd" => dec(1, 0.0, 8.0),
        "astro-pt" => dec(6, -67.0, 67.0),
        "miranda3d" => dec(4, 1.0, 1000.0),
        "turbulence" => grid(1 << 24, -1.5, 1.5),
        "wave" => grid(1 << 25, -300.0, 300.0),
        "hurricane" => Tuning {
            quant: Quant::None,
            lo: -80.0,
            hi: 120.0,
        },
        "citytemp" => grid(690, -15.0, 54.0),
        "ts-gas" => grid(16_400, 0.0, 164.0),
        "phone-gyro" => dec(6, -14.0, 14.0),
        "wesad-chest" => dec(6, -7.5, 7.5),
        "jane-street" => dec(6, -67.0, 67.0),
        "nyc-taxi" => dgrid(6, 9300, 0.0, 92.0),
        "gas-price" => dgrid(6, 400, 1.0, 1.42),
        "solar-wind" => grid(17_000, -85.0, 85.0),
        "acs-wht" => grid(1 << 20, 0.0, 105.0),
        "hdr-night" => grid(520, 0.0, 52.0),
        "hdr-palermo" => grid(650, 0.0, 65.0),
        "hst-wfc3-uvis" => grid(50_000, 0.0, 50.0),
        "hst-wfc3-ir" => grid(34_000, 0.0, 34.0),
        "spitzer-irac" => grid(3 << 19, 0.0, 150.0),
        "g24-78-usb" => grid(1 << 26, 0.0, 134.0),
        "jws-mirimage" => grid(1 << 23, 0.0, 100.0),
        "tpcH-order" => dec(2, 850.0, 555_000.0),
        "tpcxBB-store" => dec(2, 0.0, 1100.0),
        "tpcxBB-web" => dec(2, 0.0, 2000.0),
        "tpcH-lineitem" => grid(470, 900.0, 1000.0),
        "tpcDS-catalog" => grid(166_000, 0.0, 1500.0),
        "tpcDS-store" => grid(37_000, 0.0, 420.0),
        "tpcDS-web" => grid(165_000, 0.0, 1500.0),
        _ => dec(2, 0.0, 100.0),
    }
}

/// FNV-1a hash of the dataset name, used as the RNG seed.
fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Round to `d` decimal digits (exactly representable round trip for
/// d ≤ 10 and |v·10^d| < 2^52, which every tuning above satisfies).
/// Negative zero is normalized: decimal data sources never emit `-0.0`,
/// and scaled-integer codecs (BUFF) cannot carry a zero's sign bit.
#[inline]
fn round_dec(v: f64, d: u32) -> f64 {
    let s = 10f64.powi(d as i32);
    let r = (v * s).round() / s;
    if r == 0.0 {
        0.0
    } else {
        r
    }
}

/// Standard normal via Box–Muller.
fn gauss(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn finalize(spec: &DatasetSpec, tun: Tuning, dims: Vec<usize>, raw: Vec<f64>) -> FloatData {
    // Grid step is deliberately an arbitrary float (not a decimal);
    // DecimalGrid rounds the step itself to `d` decimals.
    let step = match tun.quant {
        Quant::Grid(levels) => (tun.hi - tun.lo) / levels as f64,
        Quant::DecimalGrid(d, levels) => round_dec((tun.hi - tun.lo) / levels as f64, d),
        _ => 1.0,
    };
    let clamped: Vec<f64> = raw
        .into_iter()
        .map(|v| {
            let v = v.clamp(tun.lo, tun.hi);
            match tun.quant {
                Quant::Decimal(d) => round_dec(v, d),
                Quant::Grid(_) => {
                    let q = tun.lo + ((v - tun.lo) / step).round() * step;
                    // Tiny magnitudes fall where the f32 ULP is finer than
                    // any 10-decimal grid, which would make the value
                    // unrepresentable to bounded-decimal codecs in a way
                    // real instruments never produce - snap sub-resolution
                    // readings to exact zero instead.
                    if q.abs() < (step * 0.5).max(2e-3) {
                        0.0
                    } else {
                        q
                    }
                }
                Quant::DecimalGrid(d, _) => {
                    round_dec(tun.lo + ((v - tun.lo) / step).round() * step, d)
                }
                Quant::None => v,
            }
        })
        .collect();
    match spec.precision {
        Precision::Double => FloatData::from_f64(&clamped, dims, spec.domain)
            .expect("generator produced consistent dims"),
        Precision::Single => {
            let v32: Vec<f32> = clamped.iter().map(|&v| v as f32).collect();
            FloatData::from_f32(&v32, dims, spec.domain)
                .expect("generator produced consistent dims")
        }
    }
}

/// 1-D instrument trace: oscillations + a bounded random walk.
fn gen_trace(n: usize, tun: Tuning, rng: &mut SmallRng) -> Vec<f64> {
    let mid = (tun.lo + tun.hi) / 2.0;
    let span = tun.hi - tun.lo;
    let mut walk = 0.0;
    (0..n)
        .map(|i| {
            walk += gauss(rng) * span * 0.002;
            walk = walk.clamp(-span * 0.3, span * 0.3);
            mid + span * 0.2 * (i as f64 * 0.0021).sin()
                + span * 0.08 * (i as f64 * 0.047).sin()
                + walk
        })
        .collect()
}

/// Smooth multidimensional field: superposed low-frequency waves.
fn gen_smooth_field(dims: &[usize], tun: Tuning, rng: &mut SmallRng, noise: f64) -> Vec<f64> {
    let mid = (tun.lo + tun.hi) / 2.0;
    let span = tun.hi - tun.lo;
    let (nz, ny, nx) = match dims.len() {
        1 => (1, 1, dims[0]),
        2 => (1, dims[0], dims[1]),
        _ => (dims[0], dims[1], dims[2]),
    };
    let (f1, f2, f3) = (
        rng.random_range(0.02..0.08),
        rng.random_range(0.02..0.08),
        rng.random_range(0.02..0.08),
    );
    let mut out = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let base = (x as f64 * f1).sin()
                    + (y as f64 * f2).cos()
                    + (z as f64 * f3).sin()
                    + 0.5 * ((x + y) as f64 * f1 * 0.37).sin();
                let v = mid + span * 0.13 * base + noise * span * gauss(rng);
                out.push(v);
            }
        }
    }
    out
}

/// Mostly-zero field with rare plateaus (astro-mhd's 0.97-bit entropy).
fn gen_sparse_field(n: usize, tun: Tuning, rng: &mut SmallRng) -> Vec<f64> {
    let levels: Vec<f64> = (1..=8)
        .map(|k| tun.lo + (tun.hi - tun.lo) * k as f64 / 8.0)
        .collect();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.random_range(0.0..1.0) < 0.92 {
            // Sky/zero background in short runs: keeps ratios in the
            // paper's 8-22x band rather than degenerate constant blocks.
            let run = rng.random_range(8..64).min(n - out.len());
            out.extend(std::iter::repeat_n(0.0, run));
        } else {
            let run = rng.random_range(2..12).min(n - out.len());
            let v = levels[rng.random_range(0..levels.len())];
            out.extend(std::iter::repeat_n(v, run));
        }
    }
    out
}

/// Seasonal decimal series (optionally multi-column, e.g. gas-price).
fn gen_decimal_series(dims: &[usize], tun: Tuning, rng: &mut SmallRng) -> Vec<f64> {
    let (rows, cols) = if dims.len() == 2 {
        (dims[0], dims[1])
    } else {
        (dims[0], 1)
    };
    let span = tun.hi - tun.lo;
    let offsets: Vec<f64> = (0..cols)
        .map(|_| rng.random_range(0.0..span * 0.2))
        .collect();
    let mut out = Vec::with_capacity(rows * cols);
    let mut walk = 0.0f64;
    for r in 0..rows {
        walk += gauss(rng) * span * 0.004;
        walk = walk.clamp(-span * 0.25, span * 0.25);
        let season = span * 0.25 * (r as f64 * 0.0008).sin() + span * 0.1 * (r as f64 * 0.02).sin();
        for &off in &offsets {
            out.push(tun.lo + span * 0.45 + off + season + walk);
        }
    }
    out
}

/// Interleaved sensor channels: independent bounded walks per channel.
fn gen_sensor_table(dims: &[usize], tun: Tuning, rng: &mut SmallRng) -> Vec<f64> {
    let (rows, cols) = (dims[0], dims[1]);
    let span = tun.hi - tun.lo;
    let mid = (tun.lo + tun.hi) / 2.0;
    let mut state: Vec<f64> = (0..cols)
        .map(|_| rng.random_range(-0.2..0.2) * span)
        .collect();
    let steps: Vec<f64> = (0..cols)
        .map(|c| span * 0.002 * (1.0 + c as f64 * 0.37))
        .collect();
    let mut out = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        for c in 0..cols {
            state[c] += gauss(rng) * steps[c];
            state[c] = state[c].clamp(-span * 0.45, span * 0.45);
            out.push(mid + state[c]);
        }
    }
    out
}

/// High-entropy market features: AR(1) returns per column.
fn gen_market_table(dims: &[usize], tun: Tuning, rng: &mut SmallRng) -> Vec<f64> {
    let (rows, cols) = (dims[0], dims[1]);
    let span = tun.hi - tun.lo;
    let mut state: Vec<f64> = vec![0.0; cols];
    let mut out = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        for s in state.iter_mut() {
            *s = 0.7 * *s + gauss(rng) * span * 0.05;
            out.push(*s);
        }
    }
    out
}

/// Astronomical image: flat noisy background dominated by sky (>95% per
/// §1's astronomy discussion) plus point sources.
fn gen_astro_image(dims: &[usize], tun: Tuning, rng: &mut SmallRng) -> Vec<f64> {
    let (h, w) = (dims[0], dims[1]);
    let span = tun.hi - tun.lo;
    let bg_mean = tun.lo + span * 0.08;
    let bg_sigma = span * 0.015;
    let mut img: Vec<f64> = (0..h * w)
        .map(|_| bg_mean + gauss(rng) * bg_sigma)
        .collect();
    // Point sources: ~1 per 3000 pixels, Gaussian PSF of radius ~2.
    let nsrc = (h * w / 3000).max(1);
    for _ in 0..nsrc {
        let cy = rng.random_range(0..h) as f64;
        let cx = rng.random_range(0..w) as f64;
        let amp = span * rng.random_range(0.2..0.9);
        let sigma: f64 = rng.random_range(1.0..2.5);
        let r = (3.0 * sigma) as usize + 1;
        let y0 = (cy as usize).saturating_sub(r);
        let y1 = ((cy as usize) + r).min(h - 1);
        let x0 = (cx as usize).saturating_sub(r);
        let x1 = ((cx as usize) + r).min(w - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                let d2 = (y as f64 - cy).powi(2) + (x as f64 - cx).powi(2);
                img[y * w + x] += amp * (-d2 / (2.0 * sigma * sigma)).exp();
            }
        }
    }
    img
}

/// HDR photograph: smooth luminance gradients (low distinct count).
fn gen_hdr_image(dims: &[usize], tun: Tuning, rng: &mut SmallRng) -> Vec<f64> {
    let (h, w) = (dims[0], dims[1]);
    let span = tun.hi - tun.lo;
    let (fy, fx) = (rng.random_range(1.5..3.5), rng.random_range(1.5..3.5));
    let mut out = Vec::with_capacity(h * w);
    for y in 0..h {
        for x in 0..w {
            let u = y as f64 / h as f64;
            let v = x as f64 / w as f64;
            let lum = 0.35 * (1.0 - u)
                + 0.25 * ((u * fy * std::f64::consts::PI).sin() * 0.5 + 0.5)
                + 0.25 * ((v * fx * std::f64::consts::PI).cos() * 0.5 + 0.5)
                + 0.15 * (1.0 - ((u - 0.5).powi(2) + (v - 0.5).powi(2)));
            out.push(tun.lo + span * lum.clamp(0.0, 1.0) * 0.9);
        }
    }
    out
}

/// TPC transaction columns cycling by column index. Column *cardinality*
/// mirrors the TPC schemas (prices near-continuous, quantities 50 levels,
/// rates 9 levels, counts 500 levels), mapped into the tuned range so the
/// dataset-level clamp never crushes a column.
fn gen_tpc_table(dims: &[usize], tun: Tuning, rng: &mut SmallRng) -> Vec<f64> {
    let (rows, cols) = if dims.len() == 2 {
        (dims[0], dims[1])
    } else {
        (dims[0], 1)
    };
    let span = tun.hi - tun.lo;
    let mut out = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        for c in 0..cols {
            let v = match c % 5 {
                // Price-like: skewed toward the low end, near-continuous.
                0 | 3 => {
                    let u: f64 = rng.random_range(0.0..1.0);
                    tun.lo + span * u * u
                }
                // Quantity-like: 50 levels.
                1 => tun.lo + span * rng.random_range(1..=50) as f64 / 50.0,
                // Rate-like: 9 levels.
                2 => tun.lo + span * rng.random_range(0..=8) as f64 / 9.0,
                // Count-like: 500 levels.
                _ => tun.lo + span * rng.random_range(1..=500) as f64 / 500.0,
            };
            out.push(v);
        }
    }
    out
}

/// Generate one dataset at roughly `target_elems` elements.
pub fn generate(spec: &DatasetSpec, target_elems: usize) -> FloatData {
    let mut rng = SmallRng::seed_from_u64(seed_of(spec.name));
    let dims = spec.scaled_dims(target_elems);
    let n: usize = dims.iter().product();
    let tun = tuning(spec.name);

    let raw = match spec.family {
        Family::HpcTrace => gen_trace(n, tun, &mut rng),
        Family::SmoothField => gen_smooth_field(&dims, tun, &mut rng, 0.001),
        Family::SparseField => gen_sparse_field(n, tun, &mut rng),
        Family::NoisyField => gen_smooth_field(&dims, tun, &mut rng, 0.08),
        Family::DecimalSeries => gen_decimal_series(&dims, tun, &mut rng),
        Family::SensorTable => gen_sensor_table(&dims, tun, &mut rng),
        Family::MarketTable => gen_market_table(&dims, tun, &mut rng),
        Family::AstroImage => gen_astro_image(&dims, tun, &mut rng),
        Family::HdrImage => gen_hdr_image(&dims, tun, &mut rng),
        Family::TpcTable => gen_tpc_table(&dims, tun, &mut rng),
    };
    let mut data = finalize(spec, tun, dims, raw);

    // hurricane: climate fields carry NaN fill values over masked regions;
    // these are what break the bounded-decimal codecs in Table 4 (BUFF's
    // and fpzip's "-" cells). Inject short NaN runs (~0.2% of elements).
    if spec.name == "hurricane" {
        data = inject_nan_runs(data, &mut rng, 0.002);
    }
    data
}

/// Replace roughly `fraction` of elements with NaN, in short runs.
fn inject_nan_runs(data: FloatData, rng: &mut SmallRng, fraction: f64) -> FloatData {
    let desc = data.desc().clone();
    let mut vals = data.to_f32_vec().expect("hurricane is single-precision");
    let n = vals.len();
    let mut filled = 0usize;
    let target = ((n as f64 * fraction) as usize).max(1);
    while filled < target {
        let start = rng.random_range(0..n);
        let run = rng.random_range(4..32).min(n - start);
        for v in &mut vals[start..start + run] {
            *v = f32::NAN;
        }
        filled += run;
    }
    FloatData::from_f32(&vals, desc.dims, desc.domain).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{catalog, find};
    use crate::entropy::{scaled_target, value_entropy};

    const TEST_ELEMS: usize = 1 << 16;

    #[test]
    fn generation_is_deterministic() {
        let spec = find("citytemp").unwrap();
        let a = generate(&spec, TEST_ELEMS);
        let b = generate(&spec, TEST_ELEMS);
        assert_eq!(a.bytes(), b.bytes());
    }

    #[test]
    fn distinct_datasets_differ() {
        let a = generate(&find("msg-bt").unwrap(), TEST_ELEMS);
        let b = generate(&find("num-brain").unwrap(), TEST_ELEMS);
        assert_ne!(a.bytes(), b.bytes());
    }

    #[test]
    fn dims_and_precision_match_spec() {
        for spec in catalog() {
            let data = generate(&spec, TEST_ELEMS);
            assert_eq!(data.desc().precision, spec.precision, "{}", spec.name);
            assert_eq!(data.desc().domain, spec.domain, "{}", spec.name);
            assert_eq!(data.desc().ndims(), spec.paper_dims.len(), "{}", spec.name);
            let n = data.elements();
            assert!(
                (TEST_ELEMS / 4..=TEST_ELEMS * 2).contains(&n),
                "{}: scaled to {n} elements",
                spec.name
            );
        }
    }

    #[test]
    fn decimal_datasets_are_exactly_representable() {
        for spec in catalog() {
            let tun = tuning(spec.name);
            let Quant::Decimal(d) = tun.quant else {
                continue;
            };
            let data = generate(&spec, 4096);
            let s = 10f64.powi(d as i32);
            let check = |v: f64| {
                let q = (v * s).round();
                let back = q / s;
                assert_eq!(
                    back.to_bits(),
                    v.to_bits(),
                    "{}: {v} not representable at {d} decimals",
                    spec.name
                );
            };
            match spec.precision {
                Precision::Double => {
                    for v in data.to_f64_vec().unwrap().iter().take(500) {
                        check(*v);
                    }
                }
                Precision::Single => {
                    // f32 values must round-trip through their f64 decimal.
                    for v in data.to_f32_vec().unwrap().iter().take(500) {
                        let vd = *v as f64;
                        let q = (vd * s).round();
                        let back = (q / s) as f32;
                        assert_eq!(back.to_bits(), v.to_bits(), "{}: {v}", spec.name);
                    }
                }
            }
        }
    }

    #[test]
    fn hurricane_contains_nan_fill_values() {
        let spec = find("hurricane").unwrap();
        let data = generate(&spec, TEST_ELEMS);
        let vals = data.to_f32_vec().unwrap();
        let nans = vals.iter().filter(|v| v.is_nan()).count();
        let frac = nans as f64 / vals.len() as f64;
        assert!(
            frac > 0.0005 && frac < 0.02,
            "NaN fill fraction {frac} should be ~0.2% (breaks bounded-decimal codecs)"
        );
    }

    #[test]
    fn entropies_track_table3_targets() {
        // Bands are generous: the generators model structure classes, not
        // exact histograms. Sparse/low-entropy sets get an absolute band,
        // others a relative one against the capacity-capped target.
        for spec in catalog() {
            let data = generate(&spec, TEST_ELEMS);
            let h = value_entropy(&data);
            let target = scaled_target(spec.paper_entropy, data.elements());
            let tol = (target * 0.35).max(2.5);
            assert!(
                (h - target).abs() < tol,
                "{}: entropy {h:.2} vs target {target:.2} (paper {})",
                spec.name,
                spec.paper_entropy
            );
        }
    }

    #[test]
    fn astro_mhd_is_mostly_zero() {
        let data = generate(&find("astro-mhd").unwrap(), TEST_ELEMS);
        let vals = data.to_f64_vec().unwrap();
        let zeros = vals.iter().filter(|&&v| v == 0.0).count();
        assert!(
            zeros as f64 > vals.len() as f64 * 0.7,
            "sky fraction {zeros}/{}",
            vals.len()
        );
    }

    #[test]
    fn astro_image_background_dominates() {
        let data = generate(&find("acs-wht").unwrap(), TEST_ELEMS);
        let vals = data.to_f32_vec().unwrap();
        let tun = tuning("acs-wht");
        let bg_ceiling = (tun.lo + (tun.hi - tun.lo) * 0.15) as f32;
        let bg = vals.iter().filter(|&&v| v < bg_ceiling).count();
        assert!(
            bg as f64 > vals.len() as f64 * 0.95,
            "background {bg}/{} — §1: sky occupies more than 95%",
            vals.len()
        );
    }

    #[test]
    fn all_values_within_tuned_ranges() {
        for spec in catalog() {
            let data = generate(&spec, 8192);
            let tun = tuning(spec.name);
            let (min, max) = match spec.precision {
                Precision::Double => {
                    let v = data.to_f64_vec().unwrap();
                    (
                        v.iter().cloned().fold(f64::INFINITY, f64::min),
                        v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    )
                }
                Precision::Single => {
                    let v = data.to_f32_vec().unwrap();
                    (
                        v.iter().cloned().fold(f32::INFINITY, f32::min) as f64,
                        v.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64,
                    )
                }
            };
            assert!(
                min >= tun.lo - 1e-6,
                "{}: min {min} < {}",
                spec.name,
                tun.lo
            );
            assert!(
                max <= tun.hi + 1e-6,
                "{}: max {max} > {}",
                spec.name,
                tun.hi
            );
        }
    }
}

//! Value entropy — the statistic reported in Table 3.
//!
//! Shannon entropy over the distribution of element *values* (bit
//! patterns), in bits. Matches the scale of Table 3: a near-constant
//! field (astro-mhd) scores ≈ 1; a dataset of N all-distinct values
//! saturates at log₂ N (astro-pt's 26.32 = log₂ 83.9M); low-precision
//! decimal series score log₂ of their distinct-value count (citytemp's
//! 9.43 ≈ 690 distinct temperatures).
//!
//! Because synthetic instances are scaled down, a dataset whose original
//! entropy saturates at log₂ N can only reach log₂ n_scaled here;
//! [`scaled_target`] applies that cap when validating generators.

use fcbench_core::{FloatData, Precision};
use std::collections::HashMap;

/// Shannon entropy (bits) over element bit-pattern frequencies.
pub fn value_entropy(data: &FloatData) -> f64 {
    let esize = data.desc().precision.bytes();
    let bytes = data.bytes();
    let n = bytes.len() / esize;
    if n == 0 {
        return 0.0;
    }
    let mut counts: HashMap<u64, u64> = HashMap::with_capacity(n.min(1 << 20));
    match data.desc().precision {
        Precision::Double => {
            for c in bytes.chunks_exact(8) {
                let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        Precision::Single => {
            for c in bytes.chunks_exact(4) {
                let w = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) as u64;
                *counts.entry(w).or_insert(0) += 1;
            }
        }
    }
    let nf = n as f64;
    let mut h = 0.0;
    for &c in counts.values() {
        let p = c as f64 / nf;
        h -= p * p.log2();
    }
    h
}

/// The entropy a faithful scaled-down instance should exhibit: the paper's
/// value capped by the information capacity of `n_scaled` elements.
pub fn scaled_target(paper_entropy: f64, n_scaled: usize) -> f64 {
    paper_entropy.min((n_scaled as f64).log2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    #[test]
    fn constant_data_has_zero_entropy() {
        let data = FloatData::from_f64(&[7.5; 1000], vec![1000], Domain::Hpc).unwrap();
        assert!(value_entropy(&data) < 1e-9);
    }

    #[test]
    fn uniform_two_values_score_one_bit() {
        let vals: Vec<f32> = (0..10_000)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        let data = FloatData::from_f32(&vals, vec![vals.len()], Domain::Hpc).unwrap();
        let h = value_entropy(&data);
        assert!((h - 1.0).abs() < 1e-9, "h = {h}");
    }

    #[test]
    fn all_distinct_values_saturate_at_log2_n() {
        let vals: Vec<f64> = (0..4096).map(|i| i as f64 + 0.5).collect();
        let data = FloatData::from_f64(&vals, vec![4096], Domain::Hpc).unwrap();
        let h = value_entropy(&data);
        assert!((h - 12.0).abs() < 1e-9, "h = {h}");
    }

    #[test]
    fn skew_lowers_entropy() {
        // 90% zeros, 10% spread over 1000 values.
        let mut vals = vec![0.0f64; 9000];
        vals.extend((0..1000).map(|i| 1.0 + i as f64));
        let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::Hpc).unwrap();
        let h = value_entropy(&data);
        // H = 0.9*log2(1/0.9) + 1000 * 0.0001*log2(10000) ≈ 0.137 + 1.329
        assert!(h > 1.0 && h < 2.0, "h = {h}");
    }

    #[test]
    fn nan_payloads_count_as_distinct_patterns() {
        let a = f64::from_bits(0x7FF8_0000_0000_0001);
        let b = f64::from_bits(0x7FF8_0000_0000_0002);
        let data = FloatData::from_f64(&[a, b, a, b], vec![4], Domain::Hpc).unwrap();
        assert!((value_entropy(&data) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_target_caps_at_capacity() {
        assert_eq!(scaled_target(26.32, 1 << 18), 18.0);
        assert!((scaled_target(9.43, 1 << 18) - 9.43).abs() < 1e-12);
    }
}

//! # fcbench-datasets
//!
//! Synthetic stand-ins for the 33 real-world datasets of FCBench's
//! Table 3 (the originals are multi-GB downloads; DESIGN.md documents the
//! substitution). Three pieces:
//!
//! - [`catalog`](mod@catalog) — the full Table 3 transcription (name, domain,
//!   precision, size, value entropy, extent) plus the scaling rule;
//! - [`gen`] — deterministic per-dataset generators reproducing domain
//!   structure, decimal representability (BUFF's Table 4 pattern), and
//!   the entropy targets;
//! - [`entropy`] — the value-entropy estimator matching the Table 3
//!   column.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod entropy;
pub mod gen;

pub use catalog::{catalog, find, DatasetSpec, Family};
pub use entropy::{scaled_target, value_entropy};
pub use gen::generate;

use fcbench_core::runner::NamedData;

/// Generate every dataset at `target_elems`, in Table 3 order.
pub fn generate_all(target_elems: usize) -> Vec<NamedData> {
    catalog()
        .iter()
        .map(|spec| NamedData::new(spec.name, generate(spec, target_elems)))
        .collect()
}

//! # fcbench-dzip
//!
//! A Dzip-style neural lossless compressor (Goyal et al., DCC 2021;
//! paper §4.5): a recurrent network estimates the conditional
//! distribution of each input byte, and an arithmetic coder (here the
//! range coder, its byte-oriented formulation) encodes the byte against
//! that distribution.
//!
//! Faithful structure, scaled mechanics (DESIGN.md substitution):
//!
//! - a **bootstrap model** is trained for multiple passes over the input
//!   and shipped with the stream (Dzip stores the bootstrap model);
//! - a **supporter phase** keeps adapting the model symbol by symbol
//!   during encoding, and the decoder replays the identical updates on
//!   the already-decoded prefix, so no supporter weights are stored
//!   (Dzip "retrains a new supporter model ... during decoding");
//! - the recurrent state comes from a fixed, seeded GRU reservoir; only
//!   the softmax readout is trained. All arithmetic is `f64` and
//!   deterministic — a requirement for the decoder to reproduce the
//!   encoder's probabilities bit-for-bit.
//!
//! The paper's finding this reproduces: NN compression is **orders of
//! magnitude slower** than conventional codecs ("its compression speed is
//! about several KB/s. Thus, NN-based compression methods are still not
//! practical", §4.5). The `dzip` experiment in the harness measures that.

#![forbid(unsafe_code)]

use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile,
    PrecisionSupport, Result,
};
use fcbench_entropy::{RangeDecoder, RangeEncoder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hidden state width of the GRU reservoir.
pub const HIDDEN: usize = 16;

/// Total frequency budget of the quantized distribution (< 2^16).
const PROB_TOTAL: u32 = 1 << 14;

/// Learning rate of the readout SGD.
const LEARNING_RATE: f64 = 0.15;

/// The Dzip-style codec.
#[derive(Debug, Clone)]
pub struct Dzip {
    /// Bootstrap training passes over (a prefix of) the input.
    bootstrap_passes: usize,
    /// Cap on bytes used for bootstrap training (keeps encode time sane).
    bootstrap_budget: usize,
}

impl Default for Dzip {
    fn default() -> Self {
        Self::new()
    }
}

impl Dzip {
    pub fn new() -> Self {
        Dzip {
            bootstrap_passes: 2,
            bootstrap_budget: 1 << 16,
        }
    }

    pub fn with_bootstrap(passes: usize, budget: usize) -> Self {
        Dzip {
            bootstrap_passes: passes,
            bootstrap_budget: budget.max(256),
        }
    }
}

/// Fixed random GRU reservoir: maps (byte, h) -> h'. Weights are seeded,
/// never trained, and regenerated identically by the decoder.
struct Reservoir {
    /// Update-gate input weights per byte value: `[256][HIDDEN]`.
    wz: Vec<[f64; HIDDEN]>,
    /// Candidate input weights per byte value.
    wh: Vec<[f64; HIDDEN]>,
    /// Recurrent weights, update gate: `[HIDDEN][HIDDEN]`.
    uz: Vec<[f64; HIDDEN]>,
    /// Recurrent weights, candidate.
    uh: Vec<[f64; HIDDEN]>,
}

impl Reservoir {
    fn seeded() -> Self {
        let mut rng = SmallRng::seed_from_u64(0xD21B_0057);
        let mut mat256 = || {
            (0..256)
                .map(|_| {
                    let mut row = [0.0; HIDDEN];
                    for v in row.iter_mut() {
                        *v = rng.random_range(-0.5..0.5);
                    }
                    row
                })
                .collect::<Vec<_>>()
        };
        let wz = mat256();
        let wh = mat256();
        let mut math = || {
            (0..HIDDEN)
                .map(|_| {
                    let mut row = [0.0; HIDDEN];
                    for v in row.iter_mut() {
                        // Spectral-radius-ish scaling for a stable reservoir.
                        *v = rng.random_range(-0.35..0.35);
                    }
                    row
                })
                .collect::<Vec<_>>()
        };
        let uz = math();
        let uh = math();
        Reservoir { wz, wh, uz, uh }
    }

    /// One GRU step.
    fn step(&self, byte: u8, h: &[f64; HIDDEN]) -> [f64; HIDDEN] {
        let b = byte as usize;
        let mut out = [0.0; HIDDEN];
        for i in 0..HIDDEN {
            let mut z_acc = self.wz[b][i];
            let mut c_acc = self.wh[b][i];
            for (j, &hj) in h.iter().enumerate() {
                z_acc += self.uz[i][j] * hj;
                c_acc += self.uh[i][j] * hj;
            }
            let z = sigmoid(z_acc);
            let cand = c_acc.tanh();
            out[i] = (1.0 - z) * h[i] + z * cand;
        }
        out
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Trainable softmax readout: logits = W·h + b.
#[derive(Clone)]
struct Readout {
    /// `[256][HIDDEN]` weights.
    w: Vec<[f64; HIDDEN]>,
    /// Per-symbol bias (doubles as an adaptive frequency prior).
    b: Vec<f64>,
}

impl Readout {
    fn zeroed() -> Self {
        Readout {
            w: vec![[0.0; HIDDEN]; 256],
            b: vec![0.0; 256],
        }
    }

    /// Softmax probabilities for state `h`.
    fn probs(&self, h: &[f64; HIDDEN]) -> [f64; 256] {
        let mut logits = [0.0f64; 256];
        let mut max = f64::NEG_INFINITY;
        for (s, logit) in logits.iter_mut().enumerate() {
            let mut acc = self.b[s];
            for (j, &hj) in h.iter().enumerate() {
                acc += self.w[s][j] * hj;
            }
            *logit = acc;
            max = max.max(acc);
        }
        let mut sum = 0.0;
        let mut out = [0.0f64; 256];
        for (o, &logit) in out.iter_mut().zip(logits.iter()) {
            let e = (logit - max).exp();
            *o = e;
            sum += e;
        }
        for v in out.iter_mut() {
            *v /= sum;
        }
        out
    }

    /// One SGD step of softmax cross-entropy toward `target`.
    fn train(&mut self, h: &[f64; HIDDEN], probs: &[f64; 256], target: u8) {
        for (s, &p) in probs.iter().enumerate() {
            let grad = p - if s == target as usize { 1.0 } else { 0.0 };
            let step = LEARNING_RATE * grad;
            self.b[s] -= step * 0.1;
            for (w, &hj) in self.w[s].iter_mut().zip(h.iter()) {
                *w -= step * hj;
            }
        }
    }

    /// Serialize weights as little-endian f64 bit patterns (bit-exact).
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 * (HIDDEN + 1) * 8);
        for row in &self.w {
            for v in row {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        for v in &self.b {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn deserialize(bytes: &[u8]) -> Result<Self> {
        let expect = 256 * (HIDDEN + 1) * 8;
        if bytes.len() != expect {
            return Err(Error::Corrupt(format!(
                "dzip: bootstrap weights are {} bytes, expected {expect}",
                bytes.len()
            )));
        }
        let mut r = Readout::zeroed();
        let mut pos = 0;
        let mut next = || {
            let v = f64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
            pos += 8;
            v
        };
        for s in 0..256 {
            for j in 0..HIDDEN {
                r.w[s][j] = next();
            }
        }
        for s in 0..256 {
            r.b[s] = next();
        }
        Ok(r)
    }
}

/// Quantize probabilities into integer frequencies summing ≤ PROB_TOTAL,
/// every symbol ≥ 1 (so any byte stays encodable).
fn quantize(probs: &[f64; 256]) -> ([u32; 256], u32) {
    let mut freqs = [1u32; 256];
    let budget = PROB_TOTAL - 256;
    let mut total = 256u32;
    for s in 0..256 {
        let f = (probs[s] * budget as f64) as u32;
        freqs[s] += f;
        total += f;
    }
    (freqs, total)
}

/// Train a bootstrap readout over (a prefix of) `data`.
fn bootstrap(reservoir: &Reservoir, data: &[u8], passes: usize, budget: usize) -> Readout {
    let mut readout = Readout::zeroed();
    let slice = &data[..data.len().min(budget)];
    for _ in 0..passes {
        let mut h = [0.0; HIDDEN];
        for &byte in slice {
            let probs = readout.probs(&h);
            readout.train(&h, &probs, byte);
            h = reservoir.step(byte, &h);
        }
    }
    readout
}

impl Compressor for Dzip {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "dzip",
            year: 2021,
            community: Community::General,
            class: CodecClass::Prediction,
            platform: fcbench_core::Platform::Gpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
        let bytes = data.bytes();
        let reservoir = Reservoir::seeded();
        let boot = bootstrap(
            &reservoir,
            bytes,
            self.bootstrap_passes,
            self.bootstrap_budget,
        );
        let boot_bytes = boot.serialize();

        // Supporter phase: adapt while encoding.
        let mut readout = boot.clone();
        let mut enc = RangeEncoder::new();
        let mut h = [0.0; HIDDEN];
        for &byte in bytes {
            let probs = readout.probs(&h);
            let (freqs, total) = quantize(&probs);
            let cum: u32 = freqs[..byte as usize].iter().sum();
            enc.encode(cum, freqs[byte as usize], total);
            readout.train(&h, &probs, byte);
            h = reservoir.step(byte, &h);
        }
        let stream = enc.finish();

        let mut out = Vec::with_capacity(boot_bytes.len() + stream.len() + 12);
        out.extend_from_slice(&(boot_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&boot_bytes);
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&stream);
        Ok(out)
    }

    fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
        if payload.len() < 12 {
            return Err(Error::Corrupt("dzip: payload shorter than header".into()));
        }
        let wlen = u32::from_le_bytes(payload[..4].try_into().expect("4")) as usize;
        let wbytes = payload
            .get(4..4 + wlen)
            .ok_or_else(|| Error::Corrupt("dzip: weights truncated".into()))?;
        let boot = Readout::deserialize(wbytes)?;
        let pos = 4 + wlen;
        let dlen = u64::from_le_bytes(
            payload
                .get(pos..pos + 8)
                .ok_or_else(|| Error::Corrupt("dzip: length truncated".into()))?
                .try_into()
                .expect("8"),
        ) as usize;
        if dlen != desc.byte_len() {
            return Err(Error::Corrupt(
                "dzip: length mismatch with descriptor".into(),
            ));
        }
        let stream = &payload[pos + 8..];

        let reservoir = Reservoir::seeded();
        let mut readout = boot;
        let mut dec = RangeDecoder::new(stream);
        let mut h = [0.0; HIDDEN];
        let mut out = Vec::with_capacity(dlen);
        for _ in 0..dlen {
            let probs = readout.probs(&h);
            let (freqs, total) = quantize(&probs);
            let target = dec.decode_freq(total);
            // Locate the symbol bucket.
            let mut cum = 0u32;
            let mut sym = 255u8;
            for (s, &f) in freqs.iter().enumerate() {
                if target < cum + f {
                    sym = s as u8;
                    break;
                }
                cum += f;
            }
            dec.decode_update(cum, freqs[sym as usize]);
            readout.train(&h, &probs, sym);
            h = reservoir.step(sym, &h);
            out.push(sym);
        }
        FloatData::from_bytes(desc.clone(), out)
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Per byte: GRU step 2·H² mults + readout 256·H + softmax ≈ 5000
        // FLOPs — the reason NN compression runs at KB-not-GB per second.
        let b = desc.byte_len() as u64;
        let per_byte = (2 * HIDDEN * HIDDEN + 2 * 256 * HIDDEN + 512) as u64;
        Some(OpProfile {
            int_ops: 20 * b,
            float_ops: per_byte * b,
            bytes_moved: 2 * b + 256 * (HIDDEN as u64 + 1) * 8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip(vals: &[f64]) -> usize {
        let data = FloatData::from_f64(vals, vec![vals.len()], Domain::TimeSeries).unwrap();
        let d = Dzip::with_bootstrap(1, 4096);
        let c = d.compress(&data).unwrap();
        let back = d.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn small_repetitive_stream_round_trips() {
        let vals: Vec<f64> = (0..400).map(|i| (i % 4) as f64).collect();
        round_trip(&vals);
    }

    #[test]
    fn random_bytes_round_trip() {
        let mut x = 0xBADC0FFEEu64;
        let vals: Vec<f64> = (0..200)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits(x)
            })
            .collect();
        round_trip(&vals);
    }

    #[test]
    fn special_values() {
        round_trip(&[
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
        ]);
    }

    #[test]
    fn model_learns_skewed_streams() {
        // A stream of almost all zeros must beat 1 byte/byte by a margin,
        // even after paying for the shipped bootstrap weights.
        let vals = vec![0.0f64; 2000];
        let n = round_trip(&vals);
        let raw = 2000 * 8;
        let weights = 256 * (HIDDEN + 1) * 8;
        assert!(
            n < weights + raw / 8,
            "skewed stream: {n} bytes vs raw {raw} + weights {weights}"
        );
    }

    #[test]
    fn quantized_distribution_is_valid() {
        let mut probs = [0.0f64; 256];
        probs[7] = 0.9;
        for (i, p) in probs.iter_mut().enumerate() {
            if i != 7 {
                *p = 0.1 / 255.0;
            }
        }
        let (freqs, total) = quantize(&probs);
        assert!(total <= PROB_TOTAL + 256);
        assert!(freqs.iter().all(|&f| f >= 1));
        assert_eq!(freqs.iter().sum::<u32>(), total);
        assert!(freqs[7] > freqs[8] * 100);
    }

    #[test]
    fn corrupt_payload_rejected() {
        let data = FloatData::from_f64(&[1.0, 2.0, 3.0], vec![3], Domain::Hpc).unwrap();
        let d = Dzip::with_bootstrap(1, 4096);
        let c = d.compress(&data).unwrap();
        assert!(d.decompress(&c[..8], data.desc()).is_err());
        let mut bad = c.clone();
        bad[0] ^= 0xFF; // break the weight length
        assert!(d.decompress(&bad, data.desc()).is_err());
    }

    #[test]
    fn reservoir_is_deterministic() {
        let a = Reservoir::seeded();
        let b = Reservoir::seeded();
        let h = [0.1; HIDDEN];
        assert_eq!(a.step(42, &h), b.step(42, &h));
    }

    #[test]
    fn info_marks_prediction_class() {
        let info = Dzip::new().info();
        assert_eq!(info.name, "dzip");
        assert_eq!(info.class, CodecClass::Prediction);
        assert_eq!(info.year, 2021);
    }
}

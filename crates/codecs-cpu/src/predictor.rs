//! Single-predictor codec family: last-value, last-stride, and DFCM.
//!
//! FPC-style codecs (§3.6) pair *two* hash predictors and spend a selector
//! bit per word. This family isolates one predictor per codec so the
//! benchmark matrix can attribute ratio and throughput to the predictor
//! itself rather than to the selection machinery:
//!
//! | codec | prediction for word *i* |
//! |---|---|
//! | `last-value`  | `w[i-1]` |
//! | `last-stride` | `w[i-1] + (w[i-1] - w[i-2])` (wrapping) |
//! | `dfcm`        | `w[i-1] + table[hash]`, a differential finite-context hash predictor |
//!
//! Like pFPC the stream is processed as raw little-endian u64 words with a
//! verbatim non-multiple-of-8 tail. The prediction is XORed with the true
//! word and the residual stored with a 4-bit leading-zero-byte code
//! (0..=8, no folding — the spare nibble values are simply invalid, which
//! the decoder rejects).
//!
//! Wire: `nwords (u64) | tail_len (u8) | codes (ceil(nwords/2) bytes,
//! high nibble = even word) | residual bytes | tail`.

use crate::common::{push_u64, read_u64};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    PrecisionSupport, Result,
};
use std::cell::RefCell;

/// Log2 of the DFCM hash-table size (same sizing as pFPC's tables).
const TABLE_LOG: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_LOG;

/// Which predictor a [`Predictor`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Predict the previous word.
    LastValue,
    /// Predict the previous word plus the previous delta.
    LastStride,
    /// Differential finite-context-method hash predictor.
    Dfcm,
}

/// A single-predictor XOR codec; see the module docs for the family.
#[derive(Debug, Clone, Copy)]
pub struct Predictor {
    kind: PredictorKind,
}

impl Predictor {
    pub fn new(kind: PredictorKind) -> Self {
        Predictor { kind }
    }

    pub fn last_value() -> Self {
        Self::new(PredictorKind::LastValue)
    }

    pub fn last_stride() -> Self {
        Self::new(PredictorKind::LastStride)
    }

    pub fn dfcm() -> Self {
        Self::new(PredictorKind::Dfcm)
    }

    pub fn kind(&self) -> PredictorKind {
        self.kind
    }
}

/// One step of a word predictor: produce the guess for the next word, then
/// absorb the actual word. Compression and decompression drive the same
/// state machine, so mispredictions cannot diverge between directions.
trait WordModel {
    fn predict(&self) -> u64;
    fn update(&mut self, val: u64);
}

#[derive(Default)]
struct LastValueModel {
    last: u64,
}

impl WordModel for LastValueModel {
    #[inline]
    fn predict(&self) -> u64 {
        self.last
    }

    #[inline]
    fn update(&mut self, val: u64) {
        self.last = val;
    }
}

#[derive(Default)]
struct LastStrideModel {
    last: u64,
    prev: u64,
}

impl WordModel for LastStrideModel {
    #[inline]
    fn predict(&self) -> u64 {
        self.last.wrapping_add(self.last.wrapping_sub(self.prev))
    }

    #[inline]
    fn update(&mut self, val: u64) {
        self.prev = self.last;
        self.last = val;
    }
}

/// DFCM state borrowing the thread-local table. The table carries an
/// all-zero invariant between calls: slots written during a call are
/// recorded and re-zeroed afterwards (including on corrupt-stream error
/// paths), so one 512 KB allocation per thread serves every call without
/// a full clear — the same scratch discipline as pFPC.
struct DfcmModel<'a> {
    table: &'a mut [u64],
    touched: &'a mut Vec<u32>,
    hash: usize,
    last: u64,
}

impl WordModel for DfcmModel<'_> {
    #[inline]
    fn predict(&self) -> u64 {
        self.last.wrapping_add(self.table[self.hash])
    }

    #[inline]
    fn update(&mut self, val: u64) {
        let delta = val.wrapping_sub(self.last);
        self.touched.push(self.hash as u32);
        self.table[self.hash] = delta;
        self.hash = ((self.hash << 2) ^ (delta >> 40) as usize) & (TABLE_SIZE - 1);
        self.last = val;
    }
}

struct DfcmScratch {
    table: Vec<u64>,
    touched: Vec<u32>,
}

impl DfcmScratch {
    const fn new() -> Self {
        DfcmScratch {
            table: Vec::new(),
            touched: Vec::new(),
        }
    }

    fn ensure(&mut self) {
        if self.table.is_empty() {
            self.table.resize(TABLE_SIZE, 0);
        }
    }

    fn reset(&mut self) {
        for &s in &self.touched {
            self.table[s as usize] = 0;
        }
        self.touched.clear();
    }
}

thread_local! {
    static DFCM_SCRATCH: RefCell<DfcmScratch> = const { RefCell::new(DfcmScratch::new()) };
}

/// Encode the word region: fill the pre-zeroed code bytes at `code_base`
/// in place and append the residual bytes. Each residual is one bulk
/// 8-byte store truncated to the width its nibble claims.
fn encode_words<M: WordModel>(bytes: &[u8], code_base: usize, out: &mut Vec<u8>, mut model: M) {
    for (i, w) in bytes.chunks_exact(8).enumerate() {
        let val = u64::from_le_bytes(w.try_into().expect("8 bytes"));
        let xor = val ^ model.predict();
        let lzb = xor.leading_zeros() / 8; // 0..=8
        if i & 1 == 0 {
            out[code_base + i / 2] = (lzb << 4) as u8;
        } else {
            out[code_base + i / 2] |= lzb as u8;
        }
        let eb = (8 - lzb) as usize;
        let res_start = out.len();
        out.extend_from_slice(&xor.to_le_bytes());
        out.truncate(res_start + eb);
        model.update(val);
    }
}

/// Decode `count` words from the code/residual regions, appending the raw
/// little-endian bytes to `dst`. Accepts exactly the streams
/// [`encode_words`] emits: every nibble must be a valid count and the
/// residual bytes must be consumed exactly.
fn unpack_words<M: WordModel>(
    codes: &[u8],
    residuals: &[u8],
    count: usize,
    dst: &mut Vec<u8>,
    mut model: M,
) -> Result<()> {
    let mut rpos = 0usize;
    for idx in 0..count {
        let cb = codes[idx / 2];
        let lzb = if idx & 1 == 0 {
            (cb >> 4) as usize
        } else {
            (cb & 0x0F) as usize
        };
        if lzb > 8 {
            return Err(Error::Corrupt("predictor: invalid code nibble".into()));
        }
        let eb = 8 - lzb;
        // Word path: one unaligned 8-byte load + mask covers every residual
        // width; the byte-copy fallback only runs near the stream's end.
        let xor = if let Some(s) = residuals.get(rpos..rpos + 8) {
            let w = u64::from_le_bytes(s.try_into().expect("8 bytes"));
            if eb == 8 {
                w
            } else {
                w & ((1u64 << (8 * eb)) - 1)
            }
        } else {
            let rbytes = residuals
                .get(rpos..rpos + eb)
                .ok_or_else(|| Error::Corrupt("predictor: residual stream truncated".into()))?;
            let mut le = [0u8; 8];
            le[..eb].copy_from_slice(rbytes);
            u64::from_le_bytes(le)
        };
        rpos += eb;
        let val = model.predict() ^ xor;
        model.update(val);
        dst.extend_from_slice(&val.to_le_bytes());
    }
    if rpos != residuals.len() {
        return Err(Error::Corrupt("predictor: trailing residual bytes".into()));
    }
    Ok(())
}

impl Compressor for Predictor {
    fn info(&self) -> CodecInfo {
        let (name, year, class) = match self.kind {
            PredictorKind::LastValue => ("last-value", 2015, CodecClass::Delta),
            PredictorKind::LastStride => ("last-stride", 2015, CodecClass::Delta),
            PredictorKind::Dfcm => ("dfcm", 2006, CodecClass::Prediction),
        };
        CodecInfo {
            name,
            year,
            community: Community::Database,
            class,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let bytes = data.bytes();
        let nwords = bytes.len() / 8;
        let word_bytes = &bytes[..nwords * 8];
        let tail = &bytes[nwords * 8..];
        let ncodes = nwords.div_ceil(2);

        out.clear();
        // Single worst-case reservation (header + codes + full-width
        // residuals + tail): a fresh buffer allocates exactly once.
        out.reserve(9 + ncodes + nwords * 8 + tail.len());
        push_u64(out, nwords as u64);
        out.push(tail.len() as u8);
        let code_base = out.len();
        out.resize(code_base + ncodes, 0);

        match self.kind {
            PredictorKind::LastValue => {
                encode_words(word_bytes, code_base, out, LastValueModel::default())
            }
            PredictorKind::LastStride => {
                encode_words(word_bytes, code_base, out, LastStrideModel::default())
            }
            PredictorKind::Dfcm => DFCM_SCRATCH.with_borrow_mut(|scr| {
                scr.ensure();
                let DfcmScratch { table, touched } = scr;
                encode_words(
                    word_bytes,
                    code_base,
                    out,
                    DfcmModel {
                        table,
                        touched,
                        hash: 0,
                        last: 0,
                    },
                );
                scr.reset();
            }),
        }
        out.extend_from_slice(tail);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted: reject implausible output claims
        // before anything is sized against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let mut pos = 0usize;
        let nwords = read_u64(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("predictor: missing word count".into()))?
            as usize;
        let tail_len = *payload
            .get(pos)
            .ok_or_else(|| Error::Corrupt("predictor: missing tail length".into()))?
            as usize;
        pos += 1;
        if nwords != desc.byte_len() / 8 || tail_len != desc.byte_len() % 8 {
            return Err(Error::Corrupt(format!(
                "predictor: stream geometry ({nwords} words + {tail_len}) does not match descriptor"
            )));
        }
        let ncodes = nwords.div_ceil(2);
        let codes = payload
            .get(pos..pos + ncodes)
            .ok_or_else(|| Error::Corrupt("predictor: code bytes truncated".into()))?;
        pos += ncodes;
        let body_end = payload
            .len()
            .checked_sub(tail_len)
            .filter(|&e| e >= pos)
            .ok_or_else(|| Error::Corrupt("predictor: payload shorter than tail".into()))?;
        let residuals = &payload[pos..body_end];
        let tail = &payload[body_end..];

        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            match self.kind {
                PredictorKind::LastValue => {
                    unpack_words(codes, residuals, nwords, bytes, LastValueModel::default())?
                }
                PredictorKind::LastStride => {
                    unpack_words(codes, residuals, nwords, bytes, LastStrideModel::default())?
                }
                PredictorKind::Dfcm => DFCM_SCRATCH.with_borrow_mut(|scr| {
                    scr.ensure();
                    let DfcmScratch { table, touched } = scr;
                    let result = unpack_words(
                        codes,
                        residuals,
                        nwords,
                        bytes,
                        DfcmModel {
                            table,
                            touched,
                            hash: 0,
                            last: 0,
                        },
                    );
                    scr.reset();
                    result
                })?,
            }
            bytes.extend_from_slice(tail);
            Ok(())
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        let n = (desc.byte_len() / 8) as u64;
        let (int_ops, bytes_moved) = match self.kind {
            // Predict, XOR, lz count, update: a handful of register ops;
            // the word moves each way.
            PredictorKind::LastValue => (5 * n, 2 * 8 * n),
            PredictorKind::LastStride => (7 * n, 2 * 8 * n),
            // Adds a table load + store + hash mixing per word.
            PredictorKind::Dfcm => (12 * n, 4 * 8 * n),
        };
        Some(OpProfile {
            int_ops,
            float_ops: 0,
            bytes_moved,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn all_kinds() -> [Predictor; 3] {
        [
            Predictor::last_value(),
            Predictor::last_stride(),
            Predictor::dfcm(),
        ]
    }

    fn round_trip(data: &FloatData) {
        for p in all_kinds() {
            let c = p.compress(data).unwrap();
            let back = p.decompress(&c, data.desc()).unwrap();
            assert_eq!(
                back.bytes(),
                data.bytes(),
                "{} round trip failed",
                p.info().name
            );
        }
    }

    #[test]
    fn smooth_f64_round_trips_and_compresses() {
        let vals: Vec<f64> = (0..20_000).map(|i| 5e5 + (i as f64) * 0.25).collect();
        let data = FloatData::from_f64(&vals, vec![20_000], Domain::Hpc).unwrap();
        round_trip(&data);
        // A constant-stride ramp is last-stride's home turf.
        let c = Predictor::last_stride().compress(&data).unwrap();
        assert!(
            c.len() < 20_000 * 8 / 4,
            "stride-predictable stream should compress 4x+, got {}",
            c.len()
        );
    }

    #[test]
    fn repeating_values_favor_last_value() {
        let vals: Vec<f64> = (0..8000).map(|_| 37.25).collect();
        let data = FloatData::from_f64(&vals, vec![8000], Domain::Hpc).unwrap();
        round_trip(&data);
        let c = Predictor::last_value().compress(&data).unwrap();
        assert!(
            c.len() < 8000,
            "constant stream should collapse, got {}",
            c.len()
        );
    }

    #[test]
    fn cyclic_deltas_favor_dfcm() {
        // A repeating delta pattern is what the differential context hash
        // learns; plain last-value/last-stride cannot.
        let mut acc = 0u64;
        let vals: Vec<f64> = (0..10_000)
            .map(|i| {
                acc = acc.wrapping_add([3, 8, 1, 5][i % 4]);
                acc as f64
            })
            .collect();
        let data = FloatData::from_f64(&vals, vec![10_000], Domain::Hpc).unwrap();
        round_trip(&data);
        let d = Predictor::dfcm().compress(&data).unwrap();
        let lv = Predictor::last_value().compress(&data).unwrap();
        assert!(
            d.len() < lv.len(),
            "dfcm ({}) should beat last-value ({}) on cyclic deltas",
            d.len(),
            lv.len()
        );
    }

    #[test]
    fn single_precision_with_odd_tail() {
        let vals: Vec<f32> = (0..4001).map(|i| i as f32 * 1.5).collect(); // odd count => 4-byte tail
        let data = FloatData::from_f32(&vals, vec![4001], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn special_values() {
        let vals = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
            1.0,
        ];
        let data = FloatData::from_f64(&vals, vec![7], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let data = FloatData::from_f64(&[1.5], vec![1], Domain::Hpc).unwrap();
        round_trip(&data);
        let data = FloatData::from_f32(&[2.5], vec![1], Domain::Hpc).unwrap();
        round_trip(&data); // 4 bytes => pure tail, zero words
    }

    #[test]
    fn incompressible_noise_survives() {
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let vals: Vec<f64> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits((x >> 12) | 0x3FF0_0000_0000_0000)
            })
            .collect();
        let data = FloatData::from_f64(&vals, vec![5000], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn corruption_rejected() {
        let vals: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let data = FloatData::from_f64(&vals, vec![500], Domain::Hpc).unwrap();
        for p in all_kinds() {
            let c = p.compress(&data).unwrap();
            assert!(p.decompress(&c[..5], data.desc()).is_err());
            assert!(p.decompress(&c[..c.len() - 2], data.desc()).is_err());
            let mut extra = c.clone();
            extra.push(1);
            assert!(p.decompress(&extra, data.desc()).is_err());
            // Invalid nibble (9..=15 is not a leading-zero-byte count).
            let mut bad = c.clone();
            bad[9] = 0xFF;
            assert!(p.decompress(&bad, data.desc()).is_err());
        }
    }

    #[test]
    fn dfcm_state_clean_after_corrupt_stream() {
        // A rejected stream must not leave table entries behind that would
        // change the next compression on the same thread.
        let vals: Vec<f64> = (0..2000).map(|i| (i as f64) * 1.25).collect();
        let data = FloatData::from_f64(&vals, vec![2000], Domain::Hpc).unwrap();
        let p = Predictor::dfcm();
        let clean = p.compress(&data).unwrap();
        let mut bad = clean.clone();
        let last = bad.len() - 1;
        bad.truncate(last); // truncated residual/tail => corrupt
        assert!(p.decompress(&bad, data.desc()).is_err());
        let again = p.compress(&data).unwrap();
        assert_eq!(clean, again, "corrupt decode leaked predictor state");
    }

    #[test]
    fn info_rows() {
        assert_eq!(Predictor::last_value().info().name, "last-value");
        assert_eq!(Predictor::last_stride().info().name, "last-stride");
        let d = Predictor::dfcm().info();
        assert_eq!(d.name, "dfcm");
        assert_eq!(d.class, CodecClass::Prediction);
        assert_eq!(d.platform, Platform::Cpu);
    }
}

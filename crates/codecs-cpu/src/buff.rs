//! BUFF — decomposed bounded floats (Liu et al., VLDB 2021; paper §3.3).
//!
//! BUFF targets low-decimal-precision data (server monitoring, IoT). Each
//! value is scaled by 10^p (p = decimal precision), offset by the dataset
//! minimum, and the resulting non-negative integer is stored padded to a
//! whole number of bytes. The bytes are laid out **column-major** ("each
//! byte unit is treated as a sub-column and stored together"), which lets
//! predicates run on the compressed form byte-plane by byte-plane, skipping
//! a record as soon as one plane disqualifies it (§3.3's 35×–50× claim).
//!
//! Losslessness: the paper notes BUFF "essentially becomes a lossy
//! compressor" without precision information. This implementation *derives*
//! the smallest decimal precision `p ≤ 10` that reproduces every value
//! bit-exactly and fails (like the paper's "-" cells, e.g. `hurricane`)
//! when no such precision exists. The Table 2 bits-per-precision budget
//! caps the fraction field exactly as published.
//!
//! A **range-outlier stash** keeps the paper's §3.3 insight honest
//! ("BUFF's compression ratio is sensitive to the value ranges and
//! outliers"): when trimming the extreme ~1% of scaled values shrinks the
//! per-record field enough to pay for storing those records verbatim,
//! they move to an exception list and the planes hold the trimmed range.
//!
//! Payload layout (little-endian):
//! `count u64 | precision u8 | bits u8 | min i64 | n_outliers u32 |
//!  outliers (u32 index + i64 scaled)* | column-major byte planes`.

use crate::common::{push_u64, read_u64};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    Precision, PrecisionSupport, Result,
};

/// Table 2 of the paper: bits needed for decimal precisions 1..=10.
pub const BITS_FOR_PRECISION: [u32; 11] = [0, 5, 8, 11, 15, 18, 21, 25, 28, 31, 35];

/// Maximum decimal precision BUFF will probe.
pub const MAX_PRECISION: u32 = 10;

/// The BUFF codec.
#[derive(Debug, Default, Clone)]
pub struct Buff;

impl Buff {
    pub fn new() -> Self {
        Buff
    }
}

/// Power of ten as f64 (exact for p ≤ 22).
#[inline]
fn pow10(p: u32) -> f64 {
    10f64.powi(p as i32)
}

/// Scale `v` by 10^p and verify the round trip is bit-exact in f64.
#[inline]
fn try_scale(v: f64, p: u32) -> Option<i64> {
    if !v.is_finite() {
        return None;
    }
    let scaled = v * pow10(p);
    if scaled.abs() >= 2f64.powi(52) {
        return None; // would lose integer precision
    }
    let q = scaled.round() as i64;
    let back = q as f64 / pow10(p);
    if back.to_bits() == v.to_bits() {
        Some(q)
    } else {
        None
    }
}

/// Scale an f32 by 10^p, verifying the round trip is bit-exact **in the
/// f32 domain** (native BUFF bounds the float within its own precision).
#[inline]
fn try_scale32(v: f32, p: u32) -> Option<i64> {
    if !v.is_finite() {
        return None;
    }
    let scaled = v as f64 * pow10(p);
    if scaled.abs() >= 2f64.powi(52) {
        return None;
    }
    let q = scaled.round() as i64;
    let back = (q as f64 / pow10(p)) as f32;
    if back.to_bits() == v.to_bits() {
        Some(q)
    } else {
        None
    }
}

/// Find the smallest decimal precision representing every value exactly,
/// along with the scaled integers. Errors when none ≤ [`MAX_PRECISION`]
/// works (the paper's failed cells, e.g. `hurricane`'s NaN fill values).
fn derive_precision_with<T: Copy>(
    values: &[T],
    try_scale_one: impl Fn(T, u32) -> Option<i64>,
    is_finite: impl Fn(T) -> bool,
) -> Result<(u32, Vec<i64>)> {
    'prec: for p in 0..=MAX_PRECISION {
        let mut scaled = Vec::with_capacity(values.len());
        for &v in values {
            match try_scale_one(v, p) {
                Some(q) => scaled.push(q),
                None => {
                    if !is_finite(v) {
                        return Err(Error::Unsupported(
                            "buff: non-finite value cannot be bounded".into(),
                        ));
                    }
                    continue 'prec;
                }
            }
        }
        return Ok((p, scaled));
    }
    Err(Error::Unsupported(format!(
        "buff: no decimal precision ≤ {MAX_PRECISION} represents the data losslessly"
    )))
}

fn derive_precision(values: &[f64]) -> Result<(u32, Vec<i64>)> {
    derive_precision_with(values, try_scale, |v: f64| v.is_finite())
}

fn derive_precision32(values: &[f32]) -> Result<(u32, Vec<i64>)> {
    derive_precision_with(values, try_scale32, |v: f32| v.is_finite())
}

/// Bit width needed for the integer-part span plus the Table 2 fraction
/// budget. The integer part uses `ceil(log2(span+1))` bits; the fraction
/// part is bounded by the published budget for precision `p`.
fn field_bits(span: u64, p: u32) -> u32 {
    let int_bits = 64 - span.leading_zeros().min(63);
    let int_bits = if span == 0 { 1 } else { int_bits };
    // Table 2 counts total bits for fraction handling at precision p;
    // the integer span subsumes it here because values are pre-scaled, but
    // we never go below the published budget (padding is part of BUFF).
    int_bits.max(BITS_FOR_PRECISION[p as usize].max(1))
}

struct Encoded {
    count: u64,
    precision: u8,
    bits: u8,
    min: i64,
    outliers: Vec<(u32, i64)>,
    planes: Vec<u8>,
}

/// Pick the (min, max) bounds and outlier set: either the full range with
/// no outliers, or the 0.5th-99.5th percentile range with the trimmed
/// records stashed verbatim — whichever costs fewer bytes total.
fn choose_bounds(p: u32, scaled: &[i64]) -> (i64, i64, Vec<(u32, i64)>) {
    let n = scaled.len();
    let full_min = scaled.iter().copied().min().unwrap_or(0);
    let full_max = scaled.iter().copied().max().unwrap_or(0);
    if n < 64 {
        return (full_min, full_max, Vec::new());
    }
    let mut sorted = scaled.to_vec();
    sorted.sort_unstable();
    let lo = sorted[n / 200]; // 0.5th percentile
    let hi = sorted[n - 1 - n / 200]; // 99.5th percentile
    if lo == full_min && hi == full_max {
        return (full_min, full_max, Vec::new());
    }
    let outliers: Vec<(u32, i64)> = scaled
        .iter()
        .enumerate()
        .filter(|(_, &q)| q < lo || q > hi)
        .map(|(i, &q)| (i as u32, q))
        .collect();
    let bits_full = field_bits((full_max - full_min) as u64, p);
    let bits_trim = field_bits((hi - lo) as u64, p);
    let bytes_full = (bits_full as usize).div_ceil(8) * n;
    let bytes_trim = (bits_trim as usize).div_ceil(8) * n + outliers.len() * 12;
    if bytes_trim < bytes_full {
        (lo, hi, outliers)
    } else {
        (full_min, full_max, Vec::new())
    }
}

fn encode_scaled(p: u32, scaled: &[i64]) -> Encoded {
    let (min, max, outliers) = choose_bounds(p, scaled);
    let span = (max - min) as u64;
    let bits = field_bits(span, p);
    let nbytes = (bits as usize).div_ceil(8);
    let n = scaled.len();
    let is_outlier: std::collections::HashSet<u32> = outliers.iter().map(|&(i, _)| i).collect();

    // Column-major planes: plane b holds byte b (most significant first)
    // of every record, so predicates can scan plane 0 across all records.
    // Outlier slots hold zero; readers consult the stash first.
    let mut planes = vec![0u8; nbytes * n];
    for (i, &q) in scaled.iter().enumerate() {
        if is_outlier.contains(&(i as u32)) {
            continue;
        }
        let delta = (q - min) as u64;
        for b in 0..nbytes {
            let shift = 8 * (nbytes - 1 - b);
            planes[b * n + i] = ((delta >> shift) & 0xFF) as u8;
        }
    }
    Encoded {
        count: n as u64,
        precision: p as u8,
        bits: bits as u8,
        min,
        outliers,
        planes,
    }
}

impl Compressor for Buff {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "buff",
            year: 2021,
            community: Community::Database,
            class: CodecClass::Delta,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let (p, scaled) = match data.desc().precision {
            Precision::Double => derive_precision(&data.to_f64_vec()?)?,
            // The exactness check runs in the f32 domain (native BUFF).
            Precision::Single => derive_precision32(&data.to_f32_vec()?)?,
        };
        let enc = encode_scaled(p, &scaled);
        out.clear();
        out.reserve(22 + 12 * enc.outliers.len() + enc.planes.len());
        push_u64(out, enc.count);
        out.push(enc.precision);
        out.push(enc.bits);
        out.extend_from_slice(&enc.min.to_le_bytes());
        out.extend_from_slice(&(enc.outliers.len() as u32).to_le_bytes());
        for &(idx, q) in &enc.outliers {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&q.to_le_bytes());
        }
        out.extend_from_slice(&enc.planes);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let view = BuffView::parse(payload)?;
        if view.count != desc.elements() {
            return Err(Error::Corrupt("buff: element count mismatch".into()));
        }
        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            match desc.precision {
                Precision::Double => {
                    view.decode_each(|v| bytes.extend_from_slice(&v.to_le_bytes()))
                }
                Precision::Single => {
                    view.decode_each(|v| bytes.extend_from_slice(&(v as f32).to_le_bytes()))
                }
            }
            Ok(())
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Dominant loop: scale, round, subtract, and byte scatter per value
        // (~6 float + 8 int ops); reads each value, writes the padded field.
        let n = desc.elements() as u64;
        let esz = desc.precision.bytes() as u64;
        Some(OpProfile {
            int_ops: 8 * n,
            float_ops: 6 * n,
            bytes_moved: 2 * n * esz,
        })
    }
}

thread_local! {
    /// Reused plane-gather scratch for [`BuffView::decode_each`].
    static DELTA_SCRATCH: std::cell::RefCell<Vec<u64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Zero-copy view over a BUFF payload supporting queries **without
/// decompression** — the feature that distinguishes BUFF in the survey.
pub struct BuffView<'a> {
    count: usize,
    precision: u32,
    nbytes: usize,
    min: i64,
    /// Range outliers, sorted by record index.
    outliers: Vec<(u32, i64)>,
    planes: &'a [u8],
}

impl<'a> BuffView<'a> {
    /// Parse the payload header, borrowing the plane storage.
    pub fn parse(payload: &'a [u8]) -> Result<Self> {
        let mut pos = 0usize;
        let count = read_u64(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("buff: missing count".into()))?
            as usize;
        let precision = *payload
            .get(pos)
            .ok_or_else(|| Error::Corrupt("buff: missing precision".into()))?
            as u32;
        let bits = *payload
            .get(pos + 1)
            .ok_or_else(|| Error::Corrupt("buff: missing bit width".into()))?
            as u32;
        pos += 2;
        let min_bytes = payload
            .get(pos..pos + 8)
            .ok_or_else(|| Error::Corrupt("buff: missing minimum".into()))?;
        let min = i64::from_le_bytes([
            min_bytes[0],
            min_bytes[1],
            min_bytes[2],
            min_bytes[3],
            min_bytes[4],
            min_bytes[5],
            min_bytes[6],
            min_bytes[7],
        ]);
        pos += 8;
        if precision > MAX_PRECISION || bits == 0 || bits > 63 {
            return Err(Error::Corrupt("buff: invalid header fields".into()));
        }
        let n_outliers = u32::from_le_bytes(
            payload
                .get(pos..pos + 4)
                .ok_or_else(|| Error::Corrupt("buff: missing outlier count".into()))?
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        pos += 4;
        if n_outliers > count {
            return Err(Error::Corrupt("buff: more outliers than records".into()));
        }
        let mut outliers = Vec::with_capacity(n_outliers);
        for _ in 0..n_outliers {
            let entry = payload
                .get(pos..pos + 12)
                .ok_or_else(|| Error::Corrupt("buff: outlier stash truncated".into()))?;
            let idx = u32::from_le_bytes(entry[..4].try_into().expect("4 bytes"));
            let q = i64::from_le_bytes(entry[4..].try_into().expect("8 bytes"));
            if idx as usize >= count {
                return Err(Error::Corrupt("buff: outlier index out of range".into()));
            }
            outliers.push((idx, q));
            pos += 12;
        }
        let sorted = outliers.windows(2).all(|w| w[0].0 < w[1].0);
        if !sorted {
            return Err(Error::Corrupt("buff: outlier stash not sorted".into()));
        }
        let nbytes = (bits as usize).div_ceil(8);
        let planes = &payload[pos..];
        if planes.len() != nbytes * count {
            return Err(Error::Corrupt(format!(
                "buff: plane storage is {} bytes, expected {}",
                planes.len(),
                nbytes * count
            )));
        }
        Ok(BuffView {
            count,
            precision,
            nbytes,
            min,
            outliers,
            planes,
        })
    }

    /// The stashed scaled value of record `i`, if it is an outlier.
    #[inline]
    fn outlier_at(&self, i: usize) -> Option<i64> {
        self.outliers
            .binary_search_by_key(&(i as u32), |&(idx, _)| idx)
            .ok()
            .map(|k| self.outliers[k].1)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The scaled-integer delta of record `i`, assembled from byte planes.
    #[inline]
    fn delta_at(&self, i: usize) -> u64 {
        let mut d = 0u64;
        for b in 0..self.nbytes {
            d = (d << 8) | self.planes[b * self.count + i] as u64;
        }
        d
    }

    /// Decode every record in order. Unlike a [`BuffView::value_at`] loop
    /// (a stride-`count` gather plus an outlier binary search per record),
    /// this sweeps each byte plane **sequentially** — the sub-columns are
    /// contiguous on the wire, so full decompression reads them
    /// plane-major like a memcpy — and merges the sorted outlier stash in
    /// one forward pass.
    pub fn decode_each(&self, mut emit: impl FnMut(f64)) {
        let scale = pow10(self.precision);
        // Per-thread delta scratch (the chimp window pattern): steady-state
        // decompression on a long-lived worker performs no allocation here.
        // The vector is *taken* out of the slot rather than borrowed across
        // the `emit` calls, so a re-entrant decode_each from inside `emit`
        // allocates a fresh scratch instead of panicking on a double borrow.
        let mut deltas = DELTA_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        deltas.clear();
        deltas.resize(self.count, 0);
        for b in 0..self.nbytes {
            let plane = &self.planes[b * self.count..(b + 1) * self.count];
            for (d, &p) in deltas.iter_mut().zip(plane) {
                *d = (*d << 8) | u64::from(p);
            }
        }
        let mut stash = self.outliers.iter().peekable();
        for (i, &d) in deltas.iter().enumerate() {
            let q = match stash.peek() {
                Some(&&(idx, q)) if idx as usize == i => {
                    stash.next();
                    q
                }
                _ => self.min + d as i64,
            };
            emit(q as f64 / scale);
        }
        DELTA_SCRATCH.with(|s| *s.borrow_mut() = deltas);
    }

    /// Decode record `i` to its floating-point value.
    #[inline]
    pub fn value_at(&self, i: usize) -> f64 {
        let q = match self.outlier_at(i) {
            Some(q) => q,
            None => self.min + self.delta_at(i) as i64,
        };
        q as f64 / pow10(self.precision)
    }

    /// Translate a predicate constant into plane-byte representation;
    /// `None` if the constant cannot be represented at this precision
    /// (equality can then never hold).
    fn translate(&self, c: f64) -> Option<[u8; 8]> {
        let scaled = try_scale(c, self.precision)?;
        let delta = scaled.checked_sub(self.min)?;
        if delta < 0 {
            return None;
        }
        let delta = delta as u64;
        if self.nbytes < 8 && delta >> (8 * self.nbytes) != 0 {
            return None;
        }
        let mut bytes = [0u8; 8];
        for (b, slot) in bytes.iter_mut().take(self.nbytes).enumerate() {
            let shift = 8 * (self.nbytes - 1 - b);
            *slot = ((delta >> shift) & 0xFF) as u8;
        }
        Some(bytes)
    }

    /// Equality scan on the compressed form: returns matching record
    /// indices. Evaluates plane 0 for all candidates first, then refines —
    /// "BUFF will skip a record once a sub-column is disqualified".
    pub fn query_eq(&self, c: f64) -> Vec<usize> {
        let mut hits: Vec<usize> = Vec::new();
        // The stash first: outlier rows hold zeros in the planes.
        if let Some(scaled_c) = try_scale(c, self.precision) {
            hits.extend(
                self.outliers
                    .iter()
                    .filter(|&&(_, q)| q == scaled_c)
                    .map(|&(i, _)| i as usize),
            );
        }
        let Some(target) = self.translate(c) else {
            hits.sort_unstable();
            return hits;
        };
        let mut candidates: Vec<usize> = Vec::new();
        // Plane 0 pass over contiguous memory.
        let p0 = &self.planes[..self.count];
        for (i, &b) in p0.iter().enumerate() {
            if b == target[0] {
                candidates.push(i);
            }
        }
        for (b, &tb) in target.iter().enumerate().take(self.nbytes).skip(1) {
            if candidates.is_empty() {
                break;
            }
            let plane = &self.planes[b * self.count..(b + 1) * self.count];
            candidates.retain(|&i| plane[i] == tb);
        }
        candidates.retain(|&i| self.outlier_at(i).is_none());
        hits.extend(candidates);
        hits.sort_unstable();
        hits
    }

    /// Range scan `value < c` on the compressed form, most-significant
    /// plane first: records strictly below on a prefix plane qualify
    /// outright; ties continue to the next plane.
    pub fn query_lt(&self, c: f64) -> Vec<usize> {
        // Scale c up: any representable value < c iff its delta < ceil-ish
        // bound; compute threshold delta as the smallest scaled integer ≥ c.
        let scaled_c = (c * pow10(self.precision)).ceil() as i64;
        let Some(mut threshold) = scaled_c.checked_sub(self.min) else {
            return Vec::new();
        };
        // value < c  <=>  delta < threshold', where threshold' accounts for
        // c itself being representable (strict inequality).
        if (scaled_c as f64 / pow10(self.precision)) < c {
            threshold += 1;
        }
        let scale_all_out = |below: bool| -> Vec<usize> {
            // Range decided wholesale for inliers; outliers re-decided.
            let scale = pow10(self.precision);
            let mut v: Vec<usize> = if below {
                Vec::new()
            } else {
                (0..self.count)
                    .filter(|&i| self.outlier_at(i).is_none())
                    .collect()
            };
            v.extend(
                self.outliers
                    .iter()
                    .filter(|&&(_, q)| (q as f64 / scale) < c)
                    .map(|&(i, _)| i as usize),
            );
            v.sort_unstable();
            v
        };
        if threshold <= 0 {
            return scale_all_out(true);
        }
        let threshold = threshold as u64;
        let max_delta = if self.nbytes >= 8 {
            u64::MAX
        } else {
            (1u64 << (8 * self.nbytes)) - 1
        };
        if threshold > max_delta {
            return scale_all_out(false);
        }

        let mut target = [0u8; 8];
        for (b, slot) in target.iter_mut().take(self.nbytes).enumerate() {
            let shift = 8 * (self.nbytes - 1 - b);
            *slot = ((threshold >> shift) & 0xFF) as u8;
        }

        let mut result = Vec::new();
        // undecided: records equal to the threshold prefix so far.
        let mut undecided: Vec<usize> = (0..self.count).collect();
        for (b, &tb) in target.iter().enumerate().take(self.nbytes) {
            let plane = &self.planes[b * self.count..(b + 1) * self.count];
            let mut still = Vec::new();
            for &i in &undecided {
                match plane[i].cmp(&tb) {
                    std::cmp::Ordering::Less => result.push(i),
                    std::cmp::Ordering::Equal => still.push(i),
                    std::cmp::Ordering::Greater => {}
                }
            }
            undecided = still;
            if undecided.is_empty() {
                break;
            }
        }
        // Records equal to the threshold on every plane have delta ==
        // threshold, i.e. value >= c: excluded. Outlier rows hold zeros in
        // the planes, so re-decide them from the stash.
        result.retain(|&i| self.outlier_at(i).is_none());
        let scale = pow10(self.precision);
        result.extend(
            self.outliers
                .iter()
                .filter(|&&(_, q)| (q as f64 / scale) < c)
                .map(|&(i, _)| i as usize),
        );
        result.sort_unstable();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn data_f64(vals: &[f64]) -> FloatData {
        FloatData::from_f64(vals, vec![vals.len()], Domain::TimeSeries).unwrap()
    }

    fn round_trip(vals: &[f64]) -> usize {
        let data = data_f64(vals);
        let b = Buff::new();
        let c = b.compress(&data).unwrap();
        let back = b.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn low_precision_sensor_data_compresses() {
        // One-decimal temperatures: 5 bits/value per Table 2, padded to 1 byte.
        let vals: Vec<f64> = (0..10_000)
            .map(|i| 20.0 + ((i % 60) as f64) * 0.1)
            .collect();
        let n = round_trip(&vals);
        assert!(n < 10_000 * 2, "one byte per value expected, got {n}");
    }

    #[test]
    fn integers_round_trip_at_precision_zero() {
        let vals: Vec<f64> = (0..5000).map(|i| (i % 97) as f64).collect();
        round_trip(&vals);
    }

    #[test]
    fn negative_values() {
        let vals: Vec<f64> = (0..1000).map(|i| -50.5 + (i % 100) as f64 * 0.5).collect();
        round_trip(&vals);
    }

    #[test]
    fn full_precision_noise_is_rejected() {
        // sqrt(2)-style irrational mantissas can't be bounded at 10 decimals.
        let vals: Vec<f64> = (2..100).map(|i| (i as f64).sqrt()).collect();
        let data = data_f64(&vals);
        let err = Buff::new().compress(&data).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn non_finite_rejected() {
        let data = data_f64(&[1.0, f64::NAN]);
        assert!(Buff::new().compress(&data).is_err());
        let data = data_f64(&[1.0, f64::INFINITY]);
        assert!(Buff::new().compress(&data).is_err());
    }

    #[test]
    fn single_precision_path() {
        let vals: Vec<f32> = (0..4000).map(|i| (i % 300) as f32 * 0.25).collect();
        let data = FloatData::from_f32(&vals, vec![4000], Domain::TimeSeries).unwrap();
        let b = Buff::new();
        let c = b.compress(&data).unwrap();
        let back = b.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn derive_precision_finds_minimum() {
        let (p, _) = derive_precision(&[1.5, 2.5, 3.0]).unwrap();
        assert_eq!(p, 1);
        let (p, _) = derive_precision(&[1.0, 2.0]).unwrap();
        assert_eq!(p, 0);
        let (p, _) = derive_precision(&[0.125]).unwrap();
        assert_eq!(p, 3); // 0.125 = 125e-3
    }

    #[test]
    fn query_eq_matches_scan() {
        let vals: Vec<f64> = (0..2000).map(|i| ((i * 7) % 50) as f64 * 0.5).collect();
        let data = data_f64(&vals);
        let payload = Buff::new().compress(&data).unwrap();
        let view = BuffView::parse(&payload).unwrap();
        for c in [0.0, 3.5, 12.0, 24.5, 999.0] {
            let fast: Vec<usize> = view.query_eq(c);
            let slow: Vec<usize> = vals
                .iter()
                .enumerate()
                .filter(|(_, &v)| v == c)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow, "predicate == {c}");
        }
    }

    #[test]
    fn query_lt_matches_scan() {
        let vals: Vec<f64> = (0..3000)
            .map(|i| ((i * 13) % 400) as f64 * 0.25 - 20.0)
            .collect();
        let data = data_f64(&vals);
        let payload = Buff::new().compress(&data).unwrap();
        let view = BuffView::parse(&payload).unwrap();
        for c in [-25.0, -20.0, 0.0, 17.3, 30.25, 200.0] {
            let mut fast = view.query_lt(c);
            fast.sort_unstable();
            let slow: Vec<usize> = vals
                .iter()
                .enumerate()
                .filter(|(_, &v)| v < c)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow, "predicate < {c}");
        }
    }

    #[test]
    fn query_on_unrepresentable_constant_is_empty() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let data = data_f64(&vals);
        let payload = Buff::new().compress(&data).unwrap();
        let view = BuffView::parse(&payload).unwrap();
        // 0.123456789 needs more precision than the data's (1 decimal).
        assert!(view.query_eq(0.123456789).is_empty());
    }

    #[test]
    fn corrupt_payload_rejected() {
        let vals: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let data = data_f64(&vals);
        let b = Buff::new();
        let payload = b.compress(&data).unwrap();
        assert!(b.decompress(&payload[..10], data.desc()).is_err());
        let mut bad = payload.clone();
        bad.truncate(payload.len() - 3);
        assert!(b.decompress(&bad, data.desc()).is_err());
    }

    #[test]
    fn view_len_reports_count() {
        let vals: Vec<f64> = (0..77).map(|i| i as f64).collect();
        let payload = Buff::new().compress(&data_f64(&vals)).unwrap();
        let view = BuffView::parse(&payload).unwrap();
        assert_eq!(view.len(), 77);
        assert!(!view.is_empty());
    }

    #[test]
    fn info_matches_table1() {
        let info = Buff::new().info();
        assert_eq!(info.name, "buff");
        assert_eq!(info.year, 2021);
        assert_eq!(info.community, Community::Database);
    }

    /// Values clustered in [0, 25.5] with two extreme spikes.
    fn outlier_data() -> Vec<f64> {
        let mut vals: Vec<f64> = (0..5000).map(|i| ((i * 13) % 256) as f64 / 10.0).collect();
        vals[777] = 1e9;
        vals[4001] = -1e9;
        vals
    }

    #[test]
    fn outlier_stash_pays_for_itself() {
        // Without the stash, two 1e9 spikes force ~5-byte fields on all
        // 5000 records; with it, fields stay at 2 bytes + 24 stash bytes.
        let vals = outlier_data();
        let data = data_f64(&vals);
        let payload = Buff::new().compress(&data).unwrap();
        assert!(
            payload.len() < 5000 * 3,
            "stash should keep fields narrow, got {} bytes",
            payload.len()
        );
        // And the round trip is still bit-exact.
        let back = Buff::new().decompress(&payload, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn queries_see_outlier_rows() {
        let vals = outlier_data();
        let data = data_f64(&vals);
        let payload = Buff::new().compress(&data).unwrap();
        let view = BuffView::parse(&payload).unwrap();

        // Equality on the spike itself.
        assert_eq!(view.query_eq(1e9), vec![777]);
        // Range: everything is < 1e8 except the positive spike.
        let below = view.query_lt(1e8);
        assert_eq!(below.len(), vals.len() - 1);
        assert!(!below.contains(&777));
        assert!(below.contains(&4001), "negative spike is < 1e8");
        // Range below the trimmed minimum still finds the negative spike.
        let deep = view.query_lt(-1e8);
        assert_eq!(deep, vec![4001]);
        // value_at reads through the stash.
        assert_eq!(view.value_at(777), 1e9);
        assert_eq!(view.value_at(4001), -1e9);
        assert_eq!(view.value_at(0), vals[0]);
    }

    #[test]
    fn query_lt_matches_scan_with_outliers() {
        let vals = outlier_data();
        let data = data_f64(&vals);
        let payload = Buff::new().compress(&data).unwrap();
        let view = BuffView::parse(&payload).unwrap();
        for c in [-2e9, -1.0, 0.0, 12.8, 25.5, 30.0, 2e9] {
            let fast = view.query_lt(c);
            let slow: Vec<usize> = vals
                .iter()
                .enumerate()
                .filter(|(_, &v)| v < c)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow, "predicate < {c}");
        }
    }

    #[test]
    fn bulk_decode_matches_per_record_decode() {
        // decode_each (the plane-major bulk path used by decompress) and
        // value_at (the random-access path used by queries) must agree,
        // outlier rows included.
        let vals = outlier_data();
        let payload = Buff::new().compress(&data_f64(&vals)).unwrap();
        let view = BuffView::parse(&payload).unwrap();
        let mut bulk = Vec::with_capacity(view.len());
        view.decode_each(|v| bulk.push(v));
        let per_record: Vec<f64> = (0..view.len()).map(|i| view.value_at(i)).collect();
        assert_eq!(bulk, per_record);
        assert_eq!(bulk, vals);
    }

    #[test]
    fn corrupt_outlier_stash_rejected() {
        let vals = outlier_data();
        let data = data_f64(&vals);
        let payload = Buff::new().compress(&data).unwrap();
        // Outlier count lives right after count(8) + p(1) + bits(1) + min(8).
        let mut bad = payload.clone();
        bad[18] = 0xFF;
        bad[19] = 0xFF;
        assert!(BuffView::parse(&bad).is_err());
    }
}

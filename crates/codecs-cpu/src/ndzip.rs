//! ndzip (Knorr, Thoman & Fahringer, DCC 2021; paper §3.8).
//!
//! ndzip targets multi-GB/s throughput on multidimensional grids:
//!
//! 1. The grid is divided into **hypercubes of 4096 elements**
//!    (4096 / 64×64 / 16×16×16 for 1-/2-/3-D).
//! 2. An **integer Lorenzo transform** runs inside each cube — implemented,
//!    as in ndzip, as one forward-difference sweep per dimension over the
//!    two's-complement bit patterns (the sweeps compose to the Lorenzo
//!    operator and invert exactly with wrapping adds).
//! 3. Residuals are cut into chunks of 32 (fp32) or 64 (fp64) values and
//!    **bit-transposed**.
//! 4. **Zero words are removed**: a 32-/64-bit bitmap header marks nonzero
//!    transposed words, which are copied verbatim.
//!
//! Hypercubes compress independently (thread-level parallelism); elements
//! outside whole cubes (grid borders) are stored verbatim, as in ndzip.
//!
//! Payload: `u32 ncubes | per-cube u32 size | cube streams | border bytes`.

use crate::bitshuffle::{bit_transpose_into, bit_untranspose_into};
use crate::common::{effective_dims, push_u32, read_u32};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    Precision, PrecisionSupport, Result,
};

/// Elements per hypercube.
pub const CUBE_ELEMS: usize = 4096;

/// Below this many elements compression runs its cubes inline on the
/// calling thread — the emitted streams are identical either way, and at
/// benchmark block sizes the per-call spawn cost dwarfs the cube work.
const PARALLEL_WORDS: usize = 1 << 16;

/// The ndzip CPU codec.
#[derive(Debug, Clone)]
pub struct Ndzip {
    threads: usize,
    cube_elems: usize,
}

impl Default for Ndzip {
    fn default() -> Self {
        Self::new()
    }
}

impl Ndzip {
    /// Default: 4096-element cubes, 8 worker threads.
    pub fn new() -> Self {
        Ndzip {
            threads: 8,
            cube_elems: CUBE_ELEMS,
        }
    }

    pub fn with_threads(threads: usize) -> Self {
        Ndzip {
            threads: threads.max(1),
            cube_elems: CUBE_ELEMS,
        }
    }

    /// Custom cube size for the hypercube-size ablation (power of two,
    /// ≥ 64; side lengths must stay integral for 2-D/3-D, so the exponent
    /// must be divisible by 6 for 3-D and 2 for 2-D — 4096 satisfies both).
    pub fn with_cube_elems(cube_elems: usize) -> Self {
        assert!(cube_elems.is_power_of_two() && cube_elems >= 64);
        Ndzip {
            threads: 8,
            cube_elems,
        }
    }

    /// Cube side lengths for dimensionality `nd`.
    pub fn cube_sides(&self, nd: usize) -> Vec<usize> {
        match nd {
            1 => vec![self.cube_elems],
            2 => {
                let side = (self.cube_elems as f64).sqrt() as usize;
                vec![side, side]
            }
            _ => {
                let side = (self.cube_elems as f64).cbrt().round() as usize;
                vec![side, side, side]
            }
        }
    }
}

/// Zigzag sign fold: maps small-magnitude two's-complement residuals
/// (positive *or* negative) to small unsigned values, so the transposed
/// high bit planes stay zero and the zero-word removal fires. Plays the
/// role of ndzip's residual sign handling — without it, any descending
/// step sets every high plane to ones and nothing is removed.
#[inline]
pub fn zigzag(v: u64, bits: u32) -> u64 {
    let s = (v as i64) << (64 - bits) >> (64 - bits); // sign-extend low `bits`
    (((s << 1) ^ (s >> 63)) as u64) & (u64::MAX >> (64 - bits))
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64, bits: u32) -> u64 {
    let r = ((v >> 1) as i64) ^ -((v & 1) as i64);
    (r as u64) & (u64::MAX >> (64 - bits))
}

/// Forward integer Lorenzo: one wrapping forward-difference sweep per
/// dimension over a row-major cube of `sides` extents, followed by a
/// zigzag sign fold of the residuals. Shared with ndzip-GPU, whose
/// pipeline is identical (§4.4). `bits` is the element width (32/64).
pub fn lorenzo_forward(words: &mut [u64], sides: &[usize], bits: u32) {
    let nd = sides.len();
    let mut stride = 1usize;
    for d in (0..nd).rev() {
        let len = sides[d];
        // Sweep along dimension d: x[i] -= x[i - stride] within each line.
        // Iterate indices in reverse so earlier values stay original.
        let total = words.len();
        for idx in (0..total).rev() {
            let coord = (idx / stride) % len;
            if coord > 0 {
                words[idx] = words[idx].wrapping_sub(words[idx - stride]);
            }
        }
        stride *= len;
    }
    let mask = u64::MAX >> (64 - bits);
    for w in words.iter_mut() {
        *w = zigzag(*w & mask, bits);
    }
}

/// Inverse integer Lorenzo: unfold signs, then prefix-sum sweeps in the
/// opposite order.
pub fn lorenzo_inverse(words: &mut [u64], sides: &[usize], bits: u32) {
    for w in words.iter_mut() {
        *w = unzigzag(*w, bits);
    }
    let mask = u64::MAX >> (64 - bits);
    let mut stride = words.len();
    for &len in sides {
        stride /= len;
        for idx in 0..words.len() {
            let coord = (idx / stride) % len;
            if coord > 0 {
                words[idx] = words[idx].wrapping_add(words[idx - stride]) & mask;
            }
        }
    }
}

/// Compress one cube of residual words (already Lorenzo-transformed):
/// bit-transpose chunks of `chunk` words, emit bitmap + nonzero words.
pub fn encode_cube(words: &[u64], elem_bits: usize, out: &mut Vec<u8>) {
    let chunk = elem_bits; // 32 words of 32 bits, or 64 words of 64 bits
    let esize = elem_bits / 8;
    // Chunk staging buffers are hoisted out of the loop (a cube runs 64–128
    // chunks) and nonzero words stream straight into `out`, the bitmap
    // patched in place once the chunk's zero scan is done.
    let mut raw = Vec::with_capacity(chunk * esize);
    let mut t = Vec::new();
    for words_chunk in words.chunks(chunk) {
        if words_chunk.len() == chunk {
            // Serialize chunk to bytes, transpose, scan for zero words.
            raw.clear();
            for &w in words_chunk {
                raw.extend_from_slice(&w.to_le_bytes()[..esize]);
            }
            bit_transpose_into(&raw, chunk, elem_bits, &mut t);
            // The transposed data is `elem_bits` words of `chunk` bits each;
            // word w is bytes [w*esize, (w+1)*esize) since chunk == elem_bits.
            let mut bitmap = [0u8; 8];
            let bitmap_pos = out.len();
            out.extend_from_slice(&bitmap[..esize]);
            for w in 0..elem_bits {
                let slice = &t[w * esize..(w + 1) * esize];
                if slice.iter().any(|&b| b != 0) {
                    bitmap[w / 8] |= 1 << (w % 8);
                    out.extend_from_slice(slice);
                }
            }
            out[bitmap_pos..bitmap_pos + esize].copy_from_slice(&bitmap[..esize]);
        } else {
            // Ragged tail inside a border cube: store verbatim.
            for &w in words_chunk {
                out.extend_from_slice(&w.to_le_bytes()[..esize]);
            }
        }
    }
}

/// Inverse of [`encode_cube`] for `count` words, advancing `pos`.
pub fn decode_cube(
    payload: &[u8],
    pos: &mut usize,
    count: usize,
    elem_bits: usize,
) -> Result<Vec<u64>> {
    let chunk = elem_bits;
    let esize = elem_bits / 8;
    let mut words = Vec::with_capacity(count);
    let mut t = Vec::new();
    let mut raw = Vec::new();
    let mut remaining = count;
    while remaining > 0 {
        if remaining >= chunk {
            let bitmap = payload
                .get(*pos..*pos + esize)
                .ok_or_else(|| Error::Corrupt("ndzip: bitmap truncated".into()))?;
            *pos += esize;
            let nset: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
            let nz = payload
                .get(*pos..*pos + nset * esize)
                .ok_or_else(|| Error::Corrupt("ndzip: nonzero words truncated".into()))?;
            *pos += nset * esize;
            t.clear();
            t.resize(chunk * esize, 0);
            let mut taken = 0usize;
            for w in 0..elem_bits {
                if bitmap[w / 8] & (1 << (w % 8)) != 0 {
                    t[w * esize..(w + 1) * esize]
                        .copy_from_slice(&nz[taken * esize..(taken + 1) * esize]);
                    taken += 1;
                }
            }
            bit_untranspose_into(&t, chunk, elem_bits, &mut raw);
            for c in raw.chunks_exact(esize) {
                let mut le = [0u8; 8];
                le[..esize].copy_from_slice(c);
                words.push(u64::from_le_bytes(le));
            }
            remaining -= chunk;
        } else {
            let raw = payload
                .get(*pos..*pos + remaining * esize)
                .ok_or_else(|| Error::Corrupt("ndzip: tail words truncated".into()))?;
            *pos += remaining * esize;
            for c in raw.chunks_exact(esize) {
                let mut le = [0u8; 8];
                le[..esize].copy_from_slice(c);
                words.push(u64::from_le_bytes(le));
            }
            remaining = 0;
        }
    }
    Ok(words)
}

/// Grid geometry: decompose the extent into whole cubes plus a border set.
pub struct Cubes {
    /// Linear element indices per cube, cube by cube.
    pub cube_indices: Vec<Vec<usize>>,
    /// Linear indices not covered by any whole cube.
    pub border: Vec<usize>,
    /// Cube side lengths per dimension.
    pub sides: Vec<usize>,
}

/// Plan the cube decomposition of a `dims` grid with `sides` cubes.
pub fn plan_cubes(dims: &[usize], sides: &[usize]) -> Cubes {
    let nd = dims.len();
    let counts: Vec<usize> = (0..nd).map(|d| dims[d] / sides[d]).collect();
    let mut covered = vec![false; dims.iter().product()];
    let mut cube_indices = Vec::new();

    // Enumerate cube origins in row-major order.
    let ncubes: usize = counts.iter().product();
    if counts.iter().all(|&c| c > 0) {
        for cube_id in 0..ncubes {
            let mut rem = cube_id;
            let mut origin = vec![0usize; nd];
            for d in (0..nd).rev() {
                origin[d] = (rem % counts[d]) * sides[d];
                rem /= counts[d];
            }
            let cube_elems: usize = sides.iter().product();
            let mut idxs = Vec::with_capacity(cube_elems);
            for local in 0..cube_elems {
                let mut rem = local;
                let mut lin = 0usize;
                let mut stride = 1usize;
                // Build coordinates last-dim-fastest.
                let mut coords = vec![0usize; nd];
                for d in (0..nd).rev() {
                    coords[d] = rem % sides[d];
                    rem /= sides[d];
                }
                for d in (0..nd).rev() {
                    lin += (origin[d] + coords[d]) * stride;
                    stride *= dims[d];
                }
                idxs.push(lin);
            }
            for &i in &idxs {
                covered[i] = true;
            }
            cube_indices.push(idxs);
        }
    }
    let border = (0..covered.len()).filter(|&i| !covered[i]).collect();
    Cubes {
        cube_indices,
        border,
        sides: sides.to_vec(),
    }
}

/// View any-precision data as a u64 word stream (fp32 zero-extended).
pub fn words_of(data: &FloatData) -> Vec<u64> {
    match data.desc().precision {
        Precision::Double => data.as_u64_words().expect("checked precision"),
        Precision::Single => data
            .as_u32_words()
            .expect("checked precision")
            .into_iter()
            .map(u64::from)
            .collect(),
    }
}

impl Compressor for Ndzip {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "ndzip-cpu",
            year: 2021,
            community: Community::Hpc,
            class: CodecClass::Lorenzo,
            platform: Platform::Cpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let desc = data.desc();
        let elem_bits = desc.precision.bits();
        let esize = desc.precision.bytes();
        let dims = effective_dims(desc);
        let sides = self.cube_sides(dims.len());
        let plan = plan_cubes(&dims, &sides);
        let words = words_of(data);

        let mut streams: Vec<Vec<u8>> = vec![Vec::new(); plan.cube_indices.len()];
        let nworkers = self.threads.min(streams.len()).max(1);
        if words.len() < PARALLEL_WORDS || nworkers == 1 {
            // Inline: at benchmark block sizes the per-call spawn cost
            // dwarfs the cube work. The cube buffer is reused across cubes;
            // the emitted streams are identical to the threaded path's.
            let mut cube: Vec<u64> = Vec::new();
            for (slot, idxs) in streams.iter_mut().zip(plan.cube_indices.iter()) {
                cube.clear();
                cube.extend(idxs.iter().map(|&i| words[i]));
                lorenzo_forward(&mut cube, &plan.sides, elem_bits as u32);
                slot.reserve(cube.len() * esize);
                encode_cube(&cube, elem_bits, slot);
            }
        } else {
            let per = streams.len().div_ceil(nworkers).max(1);
            std::thread::scope(|s| {
                for (wi, chunk) in streams.chunks_mut(per).enumerate() {
                    let start = wi * per;
                    let plan = &plan;
                    let words = &words;
                    s.spawn(move || {
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            let idxs = &plan.cube_indices[start + k];
                            let mut cube: Vec<u64> = idxs.iter().map(|&i| words[i]).collect();
                            lorenzo_forward(&mut cube, &plan.sides, elem_bits as u32);
                            let mut out = Vec::with_capacity(cube.len() * esize);
                            encode_cube(&cube, elem_bits, &mut out);
                            *slot = out;
                        }
                    });
                }
            });
        }

        out.clear();
        push_u32(out, streams.len() as u32);
        for s in &streams {
            push_u32(out, s.len() as u32);
        }
        for s in &streams {
            out.extend_from_slice(s);
        }
        // Border elements verbatim.
        for &i in &plan.border {
            out.extend_from_slice(&words[i].to_le_bytes()[..esize]);
        }
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let elem_bits = desc.precision.bits();
        let esize = desc.precision.bytes();
        let dims = effective_dims(desc);
        let sides = self.cube_sides(dims.len());
        let plan = plan_cubes(&dims, &sides);

        let mut pos = 0usize;
        let ncubes = read_u32(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("ndzip: missing cube count".into()))?
            as usize;
        if ncubes != plan.cube_indices.len() {
            return Err(Error::Corrupt(format!(
                "ndzip: stream has {ncubes} cubes, geometry implies {}",
                plan.cube_indices.len()
            )));
        }
        let mut sizes = Vec::with_capacity(ncubes);
        for _ in 0..ncubes {
            sizes.push(
                read_u32(payload, &mut pos)
                    .ok_or_else(|| Error::Corrupt("ndzip: directory truncated".into()))?
                    as usize,
            );
        }

        let cube_elems: usize = sides.iter().product();
        let mut words = vec![0u64; desc.elements()];
        for (k, &sz) in sizes.iter().enumerate() {
            let slice = payload
                .get(pos..pos + sz)
                .ok_or_else(|| Error::Corrupt("ndzip: cube stream truncated".into()))?;
            let mut local_pos = 0usize;
            let mut cube = decode_cube(slice, &mut local_pos, cube_elems, elem_bits)?;
            if local_pos != slice.len() {
                return Err(Error::Corrupt(
                    "ndzip: cube stream has trailing bytes".into(),
                ));
            }
            lorenzo_inverse(&mut cube, &sides, elem_bits as u32);
            for (&i, &w) in plan.cube_indices[k].iter().zip(cube.iter()) {
                words[i] = w;
            }
            pos += sz;
        }
        // Border elements.
        for &i in &plan.border {
            let raw = payload
                .get(pos..pos + esize)
                .ok_or_else(|| Error::Corrupt("ndzip: border truncated".into()))?;
            let mut le = [0u8; 8];
            le[..esize].copy_from_slice(raw);
            words[i] = u64::from_le_bytes(le);
            pos += esize;
        }
        if pos != payload.len() {
            return Err(Error::Corrupt("ndzip: trailing bytes".into()));
        }

        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            match desc.precision {
                Precision::Double => {
                    for w in words {
                        bytes.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Precision::Single => {
                    for w in words {
                        bytes.extend_from_slice(&(w as u32).to_le_bytes());
                    }
                }
            }
            Ok(())
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Dominant kernel: the transpose+compact stage — per element-bit a
        // shift/mask/or like bitshuffle, plus the Lorenzo sweeps (nd adds
        // per element). Compute-bound per §6.3's analysis (3).
        let n = desc.elements() as u64;
        let bits = (desc.byte_len() * 8) as u64;
        Some(OpProfile {
            int_ops: 3 * bits + 3 * n,
            float_ops: 0,
            bytes_moved: 3 * desc.byte_len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    #[test]
    fn lorenzo_sweeps_invert_1d() {
        let mut w: Vec<u64> = (0..32).map(|i| (i * i) as u64).collect();
        let orig = w.clone();
        lorenzo_forward(&mut w, &[32], 64);
        assert_ne!(w, orig);
        lorenzo_inverse(&mut w, &[32], 64);
        assert_eq!(w, orig);
    }

    #[test]
    fn lorenzo_sweeps_invert_2d_and_3d() {
        let mut w: Vec<u64> = (0..64).map(|i| (i * 31 % 97) as u64).collect();
        let orig = w.clone();
        lorenzo_forward(&mut w, &[8, 8], 64);
        lorenzo_inverse(&mut w, &[8, 8], 64);
        assert_eq!(w, orig);

        let mut w: Vec<u64> = (0..512).map(|i| (i * 2654435761u64) ^ 0xAA55).collect();
        let orig = w.clone();
        lorenzo_forward(&mut w, &[8, 8, 8], 64);
        lorenzo_inverse(&mut w, &[8, 8, 8], 64);
        assert_eq!(w, orig);
    }

    #[test]
    fn lorenzo_on_linear_field_gives_sparse_residuals() {
        // f(i,j) = a*i + b*j: the 2-D Lorenzo residual is zero away from
        // the cube faces.
        let (ny, nx) = (8, 8);
        let mut w = Vec::with_capacity(ny * nx);
        for i in 0..ny {
            for j in 0..nx {
                w.push((100 * i + 7 * j) as u64);
            }
        }
        lorenzo_forward(&mut w, &[ny, nx], 64);
        let zeros = w.iter().filter(|&&x| x == 0).count();
        assert!(zeros >= (ny - 1) * (nx - 1), "{zeros} zeros");
    }

    fn round_trip(codec: &Ndzip, data: &FloatData) -> usize {
        let c = codec.compress(data).unwrap();
        let back = codec.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn cube_aligned_3d_grid() {
        // 32x32x32 = 8 cubes of 16^3.
        let n = 32 * 32 * 32;
        let vals: Vec<f32> = (0..n).map(|i| (i % 1024) as f32 * 0.5).collect();
        let data = FloatData::from_f32(&vals, vec![32, 32, 32], Domain::Hpc).unwrap();
        round_trip(&Ndzip::new(), &data);
    }

    #[test]
    fn non_aligned_grid_has_borders() {
        let (nz, ny, nx) = (17, 19, 23);
        let vals: Vec<f64> = (0..nz * ny * nx).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![nz, ny, nx], Domain::Hpc).unwrap();
        round_trip(&Ndzip::new(), &data);
    }

    #[test]
    fn one_dimensional_stream() {
        let vals: Vec<f64> = (0..10_000).map(|i| 2.0 * i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![10_000], Domain::TimeSeries).unwrap();
        let n = round_trip(&Ndzip::new(), &data);
        assert!(n < 10_000 * 8, "linear ramp must compress, got {n}");
    }

    #[test]
    fn smooth_2d_field_compresses_well() {
        let (ny, nx) = (128, 128);
        let mut vals = Vec::with_capacity(ny * nx);
        for i in 0..ny {
            for j in 0..nx {
                vals.push((i as f32) * 4.0 + (j as f32) * 0.25);
            }
        }
        let data = FloatData::from_f32(&vals, vec![ny, nx], Domain::Hpc).unwrap();
        let n = round_trip(&Ndzip::new(), &data);
        assert!(n < ny * nx * 4 / 2, "plane should compress 2x+, got {n}");
    }

    #[test]
    fn tiny_inputs_are_all_border() {
        for n in [1usize, 5, 63] {
            let vals: Vec<f64> = (0..n).map(|i| i as f64 * 1.1).collect();
            let data = FloatData::from_f64(&vals, vec![n], Domain::Hpc).unwrap();
            round_trip(&Ndzip::new(), &data);
        }
    }

    #[test]
    fn special_values() {
        let mut vals = vec![0.0f64; 4096];
        vals[0] = f64::NAN;
        vals[100] = f64::INFINITY;
        vals[200] = -0.0;
        vals[4095] = 5e-324;
        let data = FloatData::from_f64(&vals, vec![4096], Domain::Hpc).unwrap();
        round_trip(&Ndzip::new(), &data);
    }

    #[test]
    fn thread_counts_round_trip() {
        let vals: Vec<f32> = (0..50_000).map(|i| (i as f32).sqrt()).collect();
        let data = FloatData::from_f32(&vals, vec![50_000], Domain::Hpc).unwrap();
        for t in [1usize, 2, 6, 16] {
            round_trip(&Ndzip::with_threads(t), &data);
        }
    }

    #[test]
    fn custom_cube_sizes() {
        let vals: Vec<f64> = (0..5000).map(|i| (i / 3) as f64).collect();
        let data = FloatData::from_f64(&vals, vec![5000], Domain::Hpc).unwrap();
        for cube in [64usize, 1024, 4096] {
            round_trip(&Ndzip::with_cube_elems(cube), &data);
        }
    }

    #[test]
    fn corruption_rejected() {
        let vals: Vec<f32> = (0..8192).map(|i| i as f32).collect();
        let data = FloatData::from_f32(&vals, vec![8192], Domain::Hpc).unwrap();
        let codec = Ndzip::new();
        let c = codec.compress(&data).unwrap();
        assert!(codec.decompress(&c[..2], data.desc()).is_err());
        assert!(codec.decompress(&c[..c.len() - 1], data.desc()).is_err());
        let mut extra = c.clone();
        extra.push(9);
        assert!(codec.decompress(&extra, data.desc()).is_err());
    }

    #[test]
    fn zero_cube_is_just_bitmaps() {
        // An all-zero cube compresses to one bitmap per chunk.
        let vals = vec![0.0f32; 4096];
        let data = FloatData::from_f32(&vals, vec![4096], Domain::Hpc).unwrap();
        let c = Ndzip::new().compress(&data).unwrap();
        // 4096/32 = 128 chunks * 4-byte bitmap + directory ≈ small.
        assert!(c.len() < 1024, "all-zero cube took {}", c.len());
    }

    #[test]
    fn info_matches_table1() {
        let info = Ndzip::new().info();
        assert_eq!(info.name, "ndzip-cpu");
        assert_eq!(info.class, CodecClass::Lorenzo);
        assert!(info.parallel);
    }
}

//! Bitshuffle (Masui et al. 2015; paper §3.7).
//!
//! Bitshuffle is a *transform*: within each block, the bits of `m` elements
//! of width `n` bits form an `m × n` matrix that is transposed to `n × m`,
//! so the i-th bits of all elements become contiguous bytes. Exponent bits
//! (nearly constant in floating-point data) then form long runs that
//! downstream dictionary coders exploit.
//!
//! Reference bitshuffle defaults to 4096-byte blocks so a block fits in L1
//! cache (§3.7); the paper's *evaluation* defaults to 64 KB blocks (its
//! Table 10 64K row equals the Table 4 main results), which this codec
//! adopts — the 4096-byte configuration is exercised by the block-size
//! ablation. Blocks are distributed across threads. Two backends mirror the
//! paper's two rows: `bitshuffle::LZ4` and `bitshuffle::zstd` (our
//! zstd-class `zzip`).
//!
//! Payload: `u32 nblocks | per-block u32 compressed size | blocks`, each
//! block `u32 raw length | backend stream`.

use crate::common::{push_u32, read_u32};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    PrecisionSupport, Result,
};
use fcbench_entropy::{lz4, lz77::Lz77Config, zzip};

/// Reference bitshuffle's L1-cache-sized block (§3.7).
pub const L1_BLOCK_BYTES: usize = 4096;

/// Default block size in bytes — the paper's evaluation block (64 KB).
pub const DEFAULT_BLOCK_BYTES: usize = 64 * 1024;

/// Dictionary backend applied after the bit transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Our from-scratch LZ4 block codec.
    Lz4,
    /// Our zstd-class LZ77+Huffman codec.
    Zzip,
}

/// The bitshuffle codec.
#[derive(Debug, Clone)]
pub struct Bitshuffle {
    backend: Backend,
    block_bytes: usize,
    threads: usize,
}

impl Bitshuffle {
    /// `bitshuffle::LZ4` with the 4096-byte default block and 8 threads.
    pub fn lz4() -> Self {
        Bitshuffle {
            backend: Backend::Lz4,
            block_bytes: DEFAULT_BLOCK_BYTES,
            threads: 8,
        }
    }

    /// `bitshuffle::zstd`-class with defaults.
    pub fn zzip() -> Self {
        Bitshuffle {
            backend: Backend::Zzip,
            block_bytes: DEFAULT_BLOCK_BYTES,
            threads: 8,
        }
    }

    /// Full configuration (for scaling and block-size ablations).
    pub fn with_config(backend: Backend, block_bytes: usize, threads: usize) -> Self {
        assert!(block_bytes >= 64, "block must hold at least a few elements");
        Bitshuffle {
            backend,
            block_bytes,
            threads: threads.max(1),
        }
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }
}

/// The bit-granular transpose this module's blocked kernel replaced.
///
/// Retained verbatim so differential tests can prove the word-level
/// transpose produces byte-identical planes — the PR-5 discipline. Not
/// used on any production path.
pub mod reference {
    /// Transpose the bits of `elems` elements of `elem_bits` bits each,
    /// one bit per loop iteration.
    pub fn bit_transpose(data: &[u8], elems: usize, elem_bits: usize) -> Vec<u8> {
        debug_assert_eq!(data.len(), elems * elem_bits / 8);
        debug_assert_eq!(elems % 8, 0);
        let mut out = vec![0u8; data.len()];
        for e in 0..elems {
            let base_bit = e * elem_bits;
            for b in 0..elem_bits {
                let in_bit = base_bit + b;
                let byte = data[in_bit / 8];
                let bit = (byte >> (in_bit % 8)) & 1;
                if bit != 0 {
                    // Lane b collects bit b of every element.
                    let out_bit = b * elems + e;
                    out[out_bit / 8] |= 1 << (out_bit % 8);
                }
            }
        }
        out
    }

    /// Inverse of [`bit_transpose`], one bit per loop iteration.
    pub fn bit_untranspose(data: &[u8], elems: usize, elem_bits: usize) -> Vec<u8> {
        debug_assert_eq!(data.len(), elems * elem_bits / 8);
        debug_assert_eq!(elems % 8, 0);
        let mut out = vec![0u8; data.len()];
        for e in 0..elems {
            let base_bit = e * elem_bits;
            for b in 0..elem_bits {
                let in_bit = b * elems + e;
                let byte = data[in_bit / 8];
                let bit = (byte >> (in_bit % 8)) & 1;
                if bit != 0 {
                    let out_bit = base_bit + b;
                    out[out_bit / 8] |= 1 << (out_bit % 8);
                }
            }
        }
        out
    }
}

/// 8x8 bit-matrix transpose of a u64 (byte = row, LSB-first bit = column),
/// via three delta-swap rounds (Hacker's Delight §7-3). Branch-free; an
/// involution.
#[inline]
fn transpose8(x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    let x = x ^ t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    let x = x ^ t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^ t ^ (t << 28)
}

/// Transpose the bits of `elems` elements of `elem_bits` bits each.
/// `data.len()` must equal `elems * elem_bits / 8`; `elems` must be a
/// multiple of 8 so every output lane is whole bytes.
///
/// Blocked kernel: each group of 8 elements is processed one element-byte
/// column at a time — gather 8 bytes into a u64, `transpose8` it, and
/// scatter the 8 result bytes into 8 consecutive bit-lane planes. Eight
/// bits move per load/store instead of one, and the inner loops are
/// branch-free gather/transpose/scatter the compiler can vectorize.
/// Byte-identical to [`reference::bit_transpose`].
pub fn bit_transpose(data: &[u8], elems: usize, elem_bits: usize) -> Vec<u8> {
    let mut out = Vec::new();
    bit_transpose_into(data, elems, elem_bits, &mut out);
    out
}

/// [`bit_transpose`] into a caller-owned buffer (contents replaced,
/// capacity reused).
pub fn bit_transpose_into(data: &[u8], elems: usize, elem_bits: usize, out: &mut Vec<u8>) {
    debug_assert_eq!(data.len(), elems * elem_bits / 8);
    debug_assert_eq!(elems % 8, 0);
    let elem_size = elem_bits / 8;
    let groups = elems / 8;
    out.clear();
    out.resize(data.len(), 0);
    match elem_size {
        8 => {
            for (g, grp) in data.chunks_exact(64).enumerate() {
                let mut rows = [0u64; 8];
                for (j, r) in grp.chunks_exact(8).enumerate() {
                    rows[j] = u64::from_le_bytes(r.try_into().unwrap());
                }
                let cols = byte_transpose8x8(rows);
                for (k, &x) in cols.iter().enumerate() {
                    let yb = transpose8(x).to_le_bytes();
                    for (t, &b) in yb.iter().enumerate() {
                        out[(8 * k + t) * groups + g] = b;
                    }
                }
            }
        }
        4 => {
            for (g, grp) in data.chunks_exact(32).enumerate() {
                let grp: &[u8; 32] = grp.try_into().unwrap();
                for k in 0..4 {
                    let x = u64::from_le_bytes([
                        grp[k],
                        grp[4 + k],
                        grp[8 + k],
                        grp[12 + k],
                        grp[16 + k],
                        grp[20 + k],
                        grp[24 + k],
                        grp[28 + k],
                    ]);
                    let yb = transpose8(x).to_le_bytes();
                    for (t, &b) in yb.iter().enumerate() {
                        out[(8 * k + t) * groups + g] = b;
                    }
                }
            }
        }
        _ => {
            for (g, grp) in data.chunks_exact(8 * elem_size).enumerate() {
                for k in 0..elem_size {
                    let mut x = 0u64;
                    for j in 0..8 {
                        x |= (grp[j * elem_size + k] as u64) << (8 * j);
                    }
                    let yb = transpose8(x).to_le_bytes();
                    for (t, &b) in yb.iter().enumerate() {
                        out[(8 * k + t) * groups + g] = b;
                    }
                }
            }
        }
    }
}

/// Inverse of [`bit_transpose`]. Byte-identical to
/// [`reference::bit_untranspose`].
pub fn bit_untranspose(data: &[u8], elems: usize, elem_bits: usize) -> Vec<u8> {
    let mut out = Vec::new();
    bit_untranspose_into(data, elems, elem_bits, &mut out);
    out
}

/// [`bit_untranspose`] into a caller-owned buffer (contents replaced,
/// capacity reused). Same blocked kernel as the forward direction with
/// gather and scatter swapped (`transpose8` is an involution).
pub fn bit_untranspose_into(data: &[u8], elems: usize, elem_bits: usize, out: &mut Vec<u8>) {
    debug_assert_eq!(data.len(), elems * elem_bits / 8);
    debug_assert_eq!(elems % 8, 0);
    let elem_size = elem_bits / 8;
    let groups = elems / 8;
    out.clear();
    out.resize(data.len(), 0);
    for g in 0..groups {
        let base = g * 8 * elem_size;
        for k in 0..elem_size {
            let mut y = 0u64;
            for t in 0..8 {
                y |= (data[(8 * k + t) * groups + g] as u64) << (8 * t);
            }
            let xb = transpose8(y).to_le_bytes();
            for (j, &b) in xb.iter().enumerate() {
                out[base + j * elem_size + k] = b;
            }
        }
    }
}

/// Transpose an 8x8 byte matrix held in 8 u64 rows (LE byte = column)
/// with three rounds of block swaps — 24 word ops instead of 64 byte
/// moves. `result[k]` holds byte `k` of every input row.
#[inline]
fn byte_transpose8x8(w: [u64; 8]) -> [u64; 8] {
    let mut m = w;
    // 4x4 byte blocks.
    for i in 0..4 {
        let (a, b) = (m[i], m[i + 4]);
        m[i] = (a & 0x0000_0000_FFFF_FFFF) | (b << 32);
        m[i + 4] = (a >> 32) | (b & 0xFFFF_FFFF_0000_0000);
    }
    // 2x2 byte blocks.
    for i in [0usize, 1, 4, 5] {
        let (a, b) = (m[i], m[i + 2]);
        m[i] = (a & 0x0000_FFFF_0000_FFFF) | ((b & 0x0000_FFFF_0000_FFFF) << 16);
        m[i + 2] = ((a >> 16) & 0x0000_FFFF_0000_FFFF) | (b & 0xFFFF_0000_FFFF_0000);
    }
    // Single bytes.
    for i in [0usize, 2, 4, 6] {
        let (a, b) = (m[i], m[i + 1]);
        m[i] = (a & 0x00FF_00FF_00FF_00FF) | ((b & 0x00FF_00FF_00FF_00FF) << 8);
        m[i + 1] = ((a >> 8) & 0x00FF_00FF_00FF_00FF) | (b & 0xFF00_FF00_FF00_FF00);
    }
    m
}

/// Shuffle one block: whole groups of 8 elements are bit-transposed; a
/// ragged tail is passed through unchanged (as the reference does).
fn shuffle_block_into(block: &[u8], elem_size: usize, out: &mut Vec<u8>) {
    let group = 8 * elem_size; // bytes per 8-element transpose unit
    let whole = block.len() / group * group;
    let elems = whole / elem_size;
    if elems > 0 {
        bit_transpose_into(&block[..whole], elems, elem_size * 8, out);
    } else {
        out.clear();
    }
    out.extend_from_slice(&block[whole..]);
}

fn unshuffle_block(block: &[u8], elem_size: usize) -> Vec<u8> {
    let group = 8 * elem_size;
    let whole = block.len() / group * group;
    let elems = whole / elem_size;
    let mut out = if elems > 0 {
        bit_untranspose(&block[..whole], elems, elem_size * 8)
    } else {
        Vec::new()
    };
    out.extend_from_slice(&block[whole..]);
    out
}

// Per-thread staging buffer for the shuffled block: a scoped worker
// compresses many blocks, so the transpose target is allocated once per
// thread rather than once per block.
thread_local! {
    static SHUFFLE_SCRATCH: std::cell::RefCell<Vec<u8>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn compress_one(block: &[u8], elem_size: usize, backend: Backend) -> Vec<u8> {
    SHUFFLE_SCRATCH.with_borrow_mut(|shuffled| {
        shuffle_block_into(block, elem_size, shuffled);
        let body = match backend {
            Backend::Lz4 => lz4::compress(shuffled),
            Backend::Zzip => {
                // Blocks are <= 64 KB: a 64 KB window with deep chains gives
                // 2-byte offsets (as tight as LZ4) plus the entropy stage —
                // the slower-but-stronger profile of real zstd.
                zzip::compress_with(
                    shuffled,
                    Lz77Config {
                        window: 1 << 16,
                        chain_depth: 128,
                    },
                )
            }
        };
        let mut out = Vec::with_capacity(4 + body.len());
        push_u32(&mut out, block.len() as u32);
        out.extend_from_slice(&body);
        out
    })
}

fn decompress_one(payload: &[u8], elem_size: usize, backend: Backend) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let raw_len = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("bitshuffle: missing block length".into()))?
        as usize;
    let body = &payload[pos..];
    let shuffled = match backend {
        Backend::Lz4 => {
            lz4::decompress(body, raw_len).map_err(|e| Error::Corrupt(e.to_string()))?
        }
        Backend::Zzip => {
            let out = zzip::decompress(body).map_err(|e| Error::Corrupt(e.to_string()))?;
            if out.len() != raw_len {
                return Err(Error::Corrupt("bitshuffle: block length mismatch".into()));
            }
            out
        }
    };
    Ok(unshuffle_block(&shuffled, elem_size))
}

impl Compressor for Bitshuffle {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: match self.backend {
                Backend::Lz4 => "bitshuffle-lz4",
                Backend::Zzip => "bitshuffle-zstd",
            },
            year: 2015,
            community: Community::Hpc,
            class: CodecClass::Dictionary,
            platform: Platform::Cpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let elem_size = data.desc().precision.bytes();
        let bytes = data.bytes();
        let blocks: Vec<&[u8]> = bytes.chunks(self.block_bytes).collect();
        let mut payloads: Vec<Vec<u8>> = vec![Vec::new(); blocks.len()];

        // Distribute blocks round-robin over `threads` workers. A single
        // worker runs inline: the per-block payloads don't depend on the
        // worker count, and a spawn costs more than a small input.
        let nworkers = self.threads.min(blocks.len()).max(1);
        if nworkers == 1 {
            for (slot, block) in payloads.iter_mut().zip(&blocks) {
                *slot = compress_one(block, elem_size, self.backend);
            }
        } else {
            std::thread::scope(|s| {
                // Split payload slots into per-worker strided views via chunks:
                // simplest safe partition is contiguous ranges.
                let per = payloads.len().div_ceil(nworkers);
                for (wi, slot_chunk) in payloads.chunks_mut(per).enumerate() {
                    let start = wi * per;
                    let blocks = &blocks;
                    let backend = self.backend;
                    s.spawn(move || {
                        for (k, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = compress_one(blocks[start + k], elem_size, backend);
                        }
                    });
                }
            });
        }

        let total: usize = payloads.iter().map(|p| p.len()).sum();
        out.clear();
        out.reserve(8 + 4 * payloads.len() + total);
        push_u32(out, payloads.len() as u32);
        for p in &payloads {
            push_u32(out, p.len() as u32);
        }
        for p in &payloads {
            out.extend_from_slice(p);
        }
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let mut pos = 0usize;
        let nblocks = read_u32(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("bitshuffle: missing block count".into()))?
            as usize;
        if nblocks > desc.byte_len().max(1) {
            return Err(Error::Corrupt("bitshuffle: absurd block count".into()));
        }
        let mut sizes = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            sizes.push(
                read_u32(payload, &mut pos)
                    .ok_or_else(|| Error::Corrupt("bitshuffle: directory truncated".into()))?
                    as usize,
            );
        }
        let mut slices = Vec::with_capacity(nblocks);
        for &sz in &sizes {
            let s = payload
                .get(pos..pos + sz)
                .ok_or_else(|| Error::Corrupt("bitshuffle: block truncated".into()))?;
            slices.push(s);
            pos += sz;
        }
        if pos != payload.len() {
            return Err(Error::Corrupt("bitshuffle: trailing bytes".into()));
        }

        let elem_size = desc.precision.bytes();
        let mut results: Vec<Result<Vec<u8>>> = Vec::with_capacity(nblocks);
        results.resize_with(nblocks, || Ok(Vec::new()));
        let nworkers = self.threads.min(nblocks).max(1);
        if nworkers <= 1 {
            for (slot, slice) in results.iter_mut().zip(&slices) {
                *slot = decompress_one(slice, elem_size, self.backend);
            }
        } else {
            let per = results.len().div_ceil(nworkers).max(1);
            std::thread::scope(|s| {
                for (wi, slot_chunk) in results.chunks_mut(per).enumerate() {
                    let start = wi * per;
                    let slices = &slices;
                    let backend = self.backend;
                    s.spawn(move || {
                        for (k, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = decompress_one(slices[start + k], elem_size, backend);
                        }
                    });
                }
            });
        }

        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            for r in results {
                bytes.extend_from_slice(&r?);
            }
            if bytes.len() != desc.byte_len() {
                return Err(Error::Corrupt(
                    "bitshuffle: reassembled size mismatch".into(),
                ));
            }
            Ok(())
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Dominant kernel is the bit transpose: per element-bit one shift,
        // mask, or — ~3 int ops per bit; the block is read and written once
        // by the transpose and re-read by the dictionary stage. Bitshuffle
        // is memory-bound (§6.3 analysis (3)).
        let bits = (desc.byte_len() * 8) as u64;
        Some(OpProfile {
            int_ops: 3 * bits,
            float_ops: 0,
            bytes_moved: 4 * desc.byte_len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    #[test]
    fn transpose_inverts() {
        for elems in [8usize, 16, 64, 256] {
            for elem_bits in [32usize, 64] {
                let n = elems * elem_bits / 8;
                let data: Vec<u8> = (0..n).map(|i| (i * 131 % 256) as u8).collect();
                let t = bit_transpose(&data, elems, elem_bits);
                let back = bit_untranspose(&t, elems, elem_bits);
                assert_eq!(back, data, "elems {elems} bits {elem_bits}");
            }
        }
    }

    // ---- differential tests against the retained bit-granular reference ----

    fn xorshift_bytes(n: usize, mut x: u32) -> Vec<u8> {
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 16) as u8
            })
            .collect()
    }

    #[test]
    fn transpose_matches_reference_exhaustive_small() {
        // Every group count through several cache-block shapes, every
        // supported element width (f32, f64, plus the generic-path widths
        // 16 and 24 bits).
        for groups in 1..=24usize {
            let elems = groups * 8;
            for elem_bits in [16usize, 24, 32, 64] {
                let n = elems * elem_bits / 8;
                let data = xorshift_bytes(n, (groups * 31 + elem_bits) as u32 | 1);
                let fast = bit_transpose(&data, elems, elem_bits);
                let slow = reference::bit_transpose(&data, elems, elem_bits);
                assert_eq!(fast, slow, "transpose {elems} x {elem_bits}");
                let back_fast = bit_untranspose(&fast, elems, elem_bits);
                let back_slow = reference::bit_untranspose(&fast, elems, elem_bits);
                assert_eq!(back_fast, back_slow, "untranspose {elems} x {elem_bits}");
                assert_eq!(back_fast, data);
            }
        }
    }

    #[test]
    fn transpose_matches_reference_large_random() {
        for (elems, elem_bits, seed) in [
            (8192usize, 32usize, 7u32),
            (4096, 64, 11),
            (1000 * 8, 64, 13),
        ] {
            let n = elems * elem_bits / 8;
            let data = xorshift_bytes(n, seed);
            assert_eq!(
                bit_transpose(&data, elems, elem_bits),
                reference::bit_transpose(&data, elems, elem_bits)
            );
            let t = bit_transpose(&data, elems, elem_bits);
            assert_eq!(
                bit_untranspose(&t, elems, elem_bits),
                reference::bit_untranspose(&t, elems, elem_bits)
            );
        }
    }

    #[test]
    fn transpose_single_bit_probes_match_reference() {
        // One set bit at every position of a small buffer: catches any
        // single misrouted bit in the blocked gather/scatter mapping.
        let elems = 16usize;
        for elem_bits in [32usize, 64] {
            let n = elems * elem_bits / 8;
            for bit in 0..n * 8 {
                let mut data = vec![0u8; n];
                data[bit / 8] = 1 << (bit % 8);
                assert_eq!(
                    bit_transpose(&data, elems, elem_bits),
                    reference::bit_transpose(&data, elems, elem_bits),
                    "probe bit {bit} at {elem_bits}"
                );
                assert_eq!(
                    bit_untranspose(&data, elems, elem_bits),
                    reference::bit_untranspose(&data, elems, elem_bits),
                    "inverse probe bit {bit} at {elem_bits}"
                );
            }
        }
    }

    #[test]
    fn transpose_collects_constant_bits() {
        // All elements share the same high byte: after transpose, the lanes
        // for those bits are constant runs.
        let words: Vec<u32> = (0..64u32).map(|i| 0x4280_0000 | i).collect();
        let mut data = Vec::new();
        for w in &words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        let t = bit_transpose(&data, 64, 32);
        // Lanes 8..31 (bits of the constant part, LE bit order) are uniform:
        // count lanes that are all-0x00 or all-0xFF.
        let lane_bytes = 64 / 8;
        let uniform = (0..32)
            .filter(|&b| {
                let lane = &t[b * lane_bytes..(b + 1) * lane_bytes];
                lane.iter().all(|&x| x == 0) || lane.iter().all(|&x| x == 0xFF)
            })
            .count();
        assert!(uniform >= 24, "expected >= 24 uniform lanes, got {uniform}");
    }

    fn round_trip(codec: &Bitshuffle, data: &FloatData) -> usize {
        let c = codec.compress(data).unwrap();
        let back = codec.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn lz4_backend_round_trip() {
        let vals: Vec<f32> = (0..50_000)
            .map(|i| 1.5 + (i % 1000) as f32 * 0.001)
            .collect();
        let data = FloatData::from_f32(&vals, vec![50_000], Domain::Observation).unwrap();
        let n = round_trip(&Bitshuffle::lz4(), &data);
        assert!(n < data.bytes().len(), "must compress, got {n}");
    }

    #[test]
    fn zzip_backend_beats_lz4_on_structured_data() {
        let vals: Vec<f64> = (0..30_000)
            .map(|i| 300.0 + ((i % 365) as f64) * 0.1)
            .collect();
        let data = FloatData::from_f64(&vals, vec![30_000], Domain::TimeSeries).unwrap();
        let l = round_trip(&Bitshuffle::lz4(), &data);
        let z = round_trip(&Bitshuffle::zzip(), &data);
        assert!(z <= l, "zstd-class ({z}) should match or beat LZ4 ({l})");
    }

    #[test]
    fn ragged_sizes_round_trip() {
        for n in [1usize, 7, 8, 9, 1023, 1024, 1025, 4096, 4097] {
            let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let data = FloatData::from_f32(&vals, vec![n], Domain::Hpc).unwrap();
            round_trip(&Bitshuffle::lz4(), &data);
        }
    }

    #[test]
    fn thread_counts_round_trip() {
        let vals: Vec<f64> = (0..20_000).map(|i| (i as f64).sqrt()).collect();
        let data = FloatData::from_f64(&vals, vec![20_000], Domain::Hpc).unwrap();
        for t in [1usize, 2, 5, 16] {
            let codec = Bitshuffle::with_config(Backend::Lz4, 4096, t);
            round_trip(&codec, &data);
        }
    }

    #[test]
    fn block_sizes_round_trip_and_bigger_blocks_help() {
        let vals: Vec<f64> = (0..40_000).map(|i| ((i % 2000) as f64) * 0.5).collect();
        let data = FloatData::from_f64(&vals, vec![40_000], Domain::TimeSeries).unwrap();
        let small = round_trip(&Bitshuffle::with_config(Backend::Lz4, 512, 4), &data);
        let big = round_trip(&Bitshuffle::with_config(Backend::Lz4, 65_536, 4), &data);
        assert!(
            big <= small,
            "64K blocks ({big}) should beat 512B blocks ({small})"
        );
    }

    #[test]
    fn special_values() {
        let vals = [
            f64::NAN,
            f64::INFINITY,
            -0.0,
            0.0,
            5e-324,
            -1.0,
            1.0,
            f64::MAX,
        ];
        let data = FloatData::from_f64(&vals, vec![8], Domain::Hpc).unwrap();
        round_trip(&Bitshuffle::lz4(), &data);
        round_trip(&Bitshuffle::zzip(), &data);
    }

    #[test]
    fn corruption_rejected() {
        let vals: Vec<f32> = (0..5000).map(|i| i as f32).collect();
        let data = FloatData::from_f32(&vals, vec![5000], Domain::Hpc).unwrap();
        let codec = Bitshuffle::lz4();
        let c = codec.compress(&data).unwrap();
        assert!(codec.decompress(&c[..3], data.desc()).is_err());
        assert!(codec.decompress(&c[..c.len() - 1], data.desc()).is_err());
        let mut extra = c.clone();
        extra.push(0);
        assert!(codec.decompress(&extra, data.desc()).is_err());
    }

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(Bitshuffle::lz4().info().name, "bitshuffle-lz4");
        assert_eq!(Bitshuffle::zzip().info().name, "bitshuffle-zstd");
    }
}

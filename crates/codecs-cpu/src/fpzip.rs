//! fpzip (Lindstrom & Isenburg 2006; paper §3.1).
//!
//! Prediction-based lossless compression for 1-D/2-D/3-D floating-point
//! fields:
//!
//! 1. The **Lorenzo predictor** estimates each value from the previously
//!    encoded corners of its unit hypercube (`x̂ = Σ x_odd − Σ x_even`).
//! 2. Actual and predicted values are mapped to **sign-magnitude ordered
//!    integers** so the residual is an integer difference.
//! 3. The residual's **sign and significant-bit count** form a symbol,
//!    encoded with a fast **range coder** (Martin 1979).
//! 4. The remaining non-zero bits are **copied verbatim** to a bit stream.
//!
//! Stream layout: `u32 rc_len | range-coded symbols | verbatim bit stream`.
//! Dimensionality comes from the data descriptor; >3-D extents collapse
//! (fpzip is driven with ≤ 3 dims throughout the paper's evaluation).

use crate::common::{effective_dims, push_u32, read_u32};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    Precision, PrecisionSupport, Result,
};
use fcbench_entropy::{AdaptiveModel, BitReader, BitWriter, RangeDecoder, RangeEncoder};

/// The fpzip codec.
#[derive(Debug, Default, Clone)]
pub struct Fpzip;

impl Fpzip {
    pub fn new() -> Self {
        Fpzip
    }
}

/// Monotone map from f64 bit patterns to unsigned integers.
#[inline]
fn map64(b: u64) -> u64 {
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

#[inline]
fn unmap64(m: u64) -> u64 {
    if m >> 63 == 1 {
        m ^ (1 << 63)
    } else {
        !m
    }
}

#[inline]
fn map32(b: u32) -> u32 {
    if b >> 31 == 1 {
        !b
    } else {
        b | (1 << 31)
    }
}

#[inline]
fn unmap32(m: u32) -> u32 {
    if m >> 31 == 1 {
        m ^ (1 << 31)
    } else {
        !m
    }
}

/// Lorenzo prediction over the already-visited neighbors of position
/// `(i, j, k)` in a row-major `[nz, ny, nx]` grid (unit offsets; missing
/// neighbors contribute zero). Generic over the element type.
macro_rules! lorenzo {
    ($name:ident, $t:ty) => {
        fn $name(out: &[$t], dims: &[usize], idx: usize) -> $t {
            match dims.len() {
                1 => {
                    if idx == 0 {
                        0.0
                    } else {
                        out[idx - 1]
                    }
                }
                2 => {
                    let nx = dims[1];
                    let i = idx / nx;
                    let j = idx % nx;
                    let mut p: $t = 0.0;
                    if j > 0 {
                        p += out[idx - 1];
                    }
                    if i > 0 {
                        p += out[idx - nx];
                    }
                    if i > 0 && j > 0 {
                        p -= out[idx - nx - 1];
                    }
                    p
                }
                _ => {
                    let ny = dims[1];
                    let nx = dims[2];
                    let plane = ny * nx;
                    let k = idx / plane;
                    let rem = idx % plane;
                    let i = rem / nx;
                    let j = rem % nx;
                    let mut p: $t = 0.0;
                    if j > 0 {
                        p += out[idx - 1];
                    }
                    if i > 0 {
                        p += out[idx - nx];
                    }
                    if k > 0 {
                        p += out[idx - plane];
                    }
                    if i > 0 && j > 0 {
                        p -= out[idx - nx - 1];
                    }
                    if k > 0 && j > 0 {
                        p -= out[idx - plane - 1];
                    }
                    if k > 0 && i > 0 {
                        p -= out[idx - plane - nx];
                    }
                    if k > 0 && i > 0 && j > 0 {
                        p += out[idx - plane - nx - 1];
                    }
                    p
                }
            }
        }
    };
}

lorenzo!(lorenzo_f64, f64);
lorenzo!(lorenzo_f32, f32);

macro_rules! fpzip_impl {
    ($enc:ident, $dec:ident, $t:ty, $w:ty, $bits:expr, $map:ident, $unmap:ident, $pred:ident,
     $to_bits:expr, $from_bits:expr) => {
        fn $enc(values: &[$t], dims: &[usize]) -> Vec<u8> {
            // Symbols: 0 = zero residual; 1..=BITS positive with k bits;
            // BITS+1..=2*BITS negative with k bits.
            let mut model = AdaptiveModel::new(2 * $bits + 1);
            let mut rc = RangeEncoder::new();
            let mut verbatim = BitWriter::with_capacity(values.len() * ($bits / 8));

            for (idx, &v) in values.iter().enumerate() {
                let pred = $pred(&values[..idx], dims, idx);
                let ma = $map(($to_bits)(v));
                let mp = $map(($to_bits)(pred));
                let (neg, mag): (bool, $w) =
                    if ma >= mp { (false, ma - mp) } else { (true, mp - ma) };
                if mag == 0 {
                    model.encode(&mut rc, 0);
                } else {
                    let k = ($bits as u32 - mag.leading_zeros()) as usize;
                    let sym = if neg { $bits + k } else { k };
                    model.encode(&mut rc, sym);
                    if k > 1 {
                        // Drop the implicit leading 1 bit.
                        let low = mag & ((1 as $w << (k - 1)) - 1);
                        verbatim.push_bits(low as u64, (k - 1) as u32);
                    }
                }
            }

            let rc_bytes = rc.finish();
            let mut out = Vec::with_capacity(8 + rc_bytes.len() + verbatim.byte_len());
            push_u32(&mut out, rc_bytes.len() as u32);
            out.extend_from_slice(&rc_bytes);
            out.extend_from_slice(&verbatim.into_bytes());
            out
        }

        fn $dec(payload: &[u8], dims: &[usize], count: usize) -> Result<Vec<$t>> {
            let mut pos = 0usize;
            let rc_len = read_u32(payload, &mut pos)
                .ok_or_else(|| Error::Corrupt("fpzip: missing rc length".into()))?
                as usize;
            let rc_bytes = payload
                .get(pos..pos + rc_len)
                .ok_or_else(|| Error::Corrupt("fpzip: range stream truncated".into()))?;
            let verbatim = &payload[pos + rc_len..];

            let mut model = AdaptiveModel::new(2 * $bits + 1);
            let mut rc = RangeDecoder::new(rc_bytes);
            let mut bits = BitReader::new(verbatim);
            let mut out: Vec<$t> = Vec::with_capacity(count);

            for idx in 0..count {
                let pred = $pred(&out, dims, idx);
                let mp = $map(($to_bits)(pred));
                let sym = model.decode(&mut rc);
                let ma = if sym == 0 {
                    mp
                } else {
                    let (neg, k) = if sym > $bits {
                        (true, sym - $bits)
                    } else {
                        (false, sym)
                    };
                    let mag: $w = if k == 1 {
                        1
                    } else {
                        let low = bits.read_bits((k - 1) as u32).ok_or_else(|| {
                            Error::Corrupt("fpzip: verbatim bits truncated".into())
                        })?;
                        (1 as $w << (k - 1)) | low as $w
                    };
                    if neg {
                        mp.wrapping_sub(mag)
                    } else {
                        mp.wrapping_add(mag)
                    }
                };
                out.push(($from_bits)($unmap(ma)));
            }
            Ok(out)
        }
    };
}

fpzip_impl!(
    encode_f64,
    decode_f64,
    f64,
    u64,
    64,
    map64,
    unmap64,
    lorenzo_f64,
    |v: f64| v.to_bits(),
    f64::from_bits
);
fpzip_impl!(
    encode_f32,
    decode_f32,
    f32,
    u32,
    32,
    map32,
    unmap32,
    lorenzo_f32,
    |v: f32| v.to_bits(),
    f32::from_bits
);

impl Compressor for Fpzip {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "fpzip",
            year: 2006,
            community: Community::Hpc,
            class: CodecClass::Lorenzo,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let dims = effective_dims(data.desc());
        out.clear();
        match data.desc().precision {
            Precision::Double => out.extend_from_slice(&encode_f64(&data.to_f64_vec()?, &dims)),
            Precision::Single => out.extend_from_slice(&encode_f32(&data.to_f32_vec()?, &dims)),
        }
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let dims = effective_dims(desc);
        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            match desc.precision {
                Precision::Double => {
                    for v in decode_f64(payload, &dims, desc.elements())? {
                        bytes.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Precision::Single => {
                    for v in decode_f32(payload, &dims, desc.elements())? {
                        bytes.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Ok(())
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Dominant loop: Lorenzo sum (≤ 7 FP add/sub), map/compare/subtract
        // plus the range-coder update (~30 int ops — serial and branchy,
        // which is why fpzip sits lowest on the CPU roofline).
        let n = desc.elements() as u64;
        let esz = desc.precision.bytes() as u64;
        Some(OpProfile {
            int_ops: 30 * n,
            float_ops: 7 * n,
            bytes_moved: 2 * n * esz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip(data: &FloatData) -> usize {
        let f = Fpzip::new();
        let c = f.compress(data).unwrap();
        let back = f.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn smooth_3d_field_compresses_well() {
        let (nz, ny, nx) = (16, 16, 16);
        let mut vals = Vec::with_capacity(nz * ny * nx);
        for k in 0..nz {
            for i in 0..ny {
                for j in 0..nx {
                    vals.push(((k + i + j) as f64 * 0.01).sin());
                }
            }
        }
        let data = FloatData::from_f64(&vals, vec![nz, ny, nx], Domain::Hpc).unwrap();
        let n = round_trip(&data);
        // sin() keeps full mantissa entropy; ~1.5-2x is what real fpzip
        // achieves on such fields (Table 4: 1.2-3.9 on HPC data).
        assert!(
            n < vals.len() * 8 * 7 / 10,
            "smooth field should compress >1.4x, got {n}"
        );
    }

    #[test]
    fn dimensionality_helps_on_planar_data() {
        // A 2-D field that is a pure plane: the 2-D Lorenzo predictor is
        // near-exact; flattening to 1-D degrades it to delta (§6.1.5 md/1d).
        let (ny, nx) = (64, 64);
        let mut vals = Vec::with_capacity(ny * nx);
        for i in 0..ny {
            for j in 0..nx {
                vals.push(3.0 * i as f64 + 7.0 * j as f64);
            }
        }
        let data2d = FloatData::from_f64(&vals, vec![ny, nx], Domain::Hpc).unwrap();
        let data1d = data2d.flattened_1d();
        let md = round_trip(&data2d);
        let oned = round_trip(&data1d);
        assert!(
            md <= oned,
            "2-D Lorenzo ({md}) should not lose to 1-D ({oned})"
        );
    }

    #[test]
    fn one_dimensional_series() {
        let vals: Vec<f64> = (0..5000).map(|i| 100.0 + (i as f64 * 0.1).cos()).collect();
        let data = FloatData::from_f64(&vals, vec![5000], Domain::TimeSeries).unwrap();
        round_trip(&data);
    }

    #[test]
    fn special_values_round_trip() {
        let vals = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
            -1.5,
        ];
        let data = FloatData::from_f64(&vals, vec![7], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn single_precision_3d() {
        let vals: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin() * 100.0).collect();
        let data = FloatData::from_f32(&vals, vec![16, 16, 16], Domain::Hpc).unwrap();
        let n = round_trip(&data);
        assert!(n < 4096 * 4);
    }

    #[test]
    fn random_noise_survives() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let vals: Vec<f64> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits(x)
            })
            .collect();
        let data = FloatData::from_f64(&vals, vec![2000], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn constant_field_is_tiny() {
        let vals = vec![7.25f64; 4096];
        let data = FloatData::from_f64(&vals, vec![16, 16, 16], Domain::Hpc).unwrap();
        let n = round_trip(&data);
        assert!(n < 600, "constant field took {n} bytes");
    }

    #[test]
    fn map_is_monotone_and_invertible() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        let mapped: Vec<u64> = samples.iter().map(|v| map64(v.to_bits())).collect();
        for w in mapped.windows(2) {
            assert!(w[0] < w[1], "map must be strictly monotone");
        }
        for &v in &samples {
            assert_eq!(unmap64(map64(v.to_bits())), v.to_bits());
        }
        for &b in &[0u32, 1, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF] {
            assert_eq!(unmap32(map32(b)), b);
        }
    }

    #[test]
    fn four_d_extent_collapses() {
        let vals: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![2, 2, 8, 8], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn truncation_rejected() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let data = FloatData::from_f64(&vals, vec![1000], Domain::Hpc).unwrap();
        let f = Fpzip::new();
        let c = f.compress(&data).unwrap();
        assert!(f.decompress(&c[..2], data.desc()).is_err());
        // Cutting the verbatim tail must fail (not enough mantissa bits).
        assert!(f.decompress(&c[..c.len() * 2 / 3], data.desc()).is_err());
    }
}

//! Gorilla value compression (Pelkonen et al., VLDB 2015; paper §3.4).
//!
//! Facebook's in-memory TSDB compresses each value by XOR-ing it with the
//! previous value and encoding the residual with three control forms:
//!
//! - `0` — residual is all zeros (value repeats);
//! - `10` — the residual's meaningful bits fall inside the previous
//!   leading/trailing-zero window: store just those bits;
//! - `11` — new window: 5 bits of leading-zero count, 6 bits of
//!   meaningful-bit length, then the bits.
//!
//! The paper's datasets are value arrays (no timestamps), so only the value
//! stream is implemented; the timestamp delta-of-delta path is not exercised
//! by any FCBench experiment. Works on both precisions via bit-pattern
//! words (Table 4 runs Gorilla on fp32 datasets too).

use crate::common::{push_u64, read_u64, u32_words, u64_words};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    Precision, PrecisionSupport, Result,
};
use fcbench_entropy::{BitReader, BitSink};

/// Gorilla's XOR value codec.
#[derive(Debug, Default, Clone)]
pub struct Gorilla;

impl Gorilla {
    pub fn new() -> Self {
        Gorilla
    }
}

/// Per-word-width constants.
#[derive(Clone, Copy)]
struct Layout {
    bits: u32,
    /// Field width of the leading-zero count (5 bits, clamped to 31, per
    /// the original design; sufficient for 32-bit words too).
    lz_field: u32,
    /// Field width of the meaningful-length count (stores `len - 1`).
    len_field: u32,
}

const L64: Layout = Layout {
    bits: 64,
    lz_field: 5,
    len_field: 6,
};
const L32: Layout = Layout {
    bits: 32,
    lz_field: 5,
    len_field: 5,
};

/// Worst-case payload bytes for `elements` values: the 8-byte count header
/// plus a stream where every value after the first emits a fresh
/// full-width `11` window. Reserving this up front keeps the bit sink's
/// word spills from ever growing the buffer.
fn worst_case_bytes(lay: Layout, elements: usize) -> usize {
    let per_value = (2 + lay.lz_field + lay.len_field + lay.bits) as usize;
    let stream_bits = lay.bits as usize + elements.saturating_sub(1) * per_value;
    8 + stream_bits.div_ceil(8)
}

fn encode_words(mut words: impl Iterator<Item = u64>, lay: Layout, w: &mut BitSink<'_>) {
    let Some(first) = words.next() else {
        return;
    };
    w.push_bits(first, lay.bits);
    let mut prev = first;
    // The active meaningful-bit window from the last `11` form; `win_len`
    // is hoisted so the hot `10` path does no per-value recomputation.
    let mut win_lz = 0u32;
    let mut win_tz = 0u32;
    let mut win_len = lay.bits;
    let mut have_window = false;
    // Width of the fused `11` + lz-count + length header (13 bits for f64).
    let hdr_bits = 2 + lay.lz_field + lay.len_field;

    for cur in words {
        let xor = prev ^ cur;
        prev = cur;
        if xor == 0 {
            w.push_bit(false);
            continue;
        }
        // leading_zeros is computed on u64; shift out the unused high bits
        // for 32-bit words, then clamp to the 5-bit field maximum of 31.
        let lz = (xor.leading_zeros() - (64 - lay.bits)).min(31);
        let tz = xor.trailing_zeros().min(lay.bits - 1);

        if have_window && lz >= win_lz && tz >= win_tz {
            // `10`: reuse previous window, control + payload in one push
            // whenever they fit a single 64-bit field.
            let payload = xor >> win_tz;
            if win_len <= 62 {
                w.push_bits((0b10u64 << win_len) | payload, win_len + 2);
            } else {
                w.push_bits(0b10, 2);
                w.push_bits(payload, win_len);
            }
        } else {
            // `11`: emit a fresh window; the control bits, lz count, and
            // stored length fuse into one push.
            let len = lay.bits - lz - tz;
            let hdr = (0b11u64 << (lay.lz_field + lay.len_field))
                | ((lz as u64) << lay.len_field)
                | (len - 1) as u64;
            w.push_bits(hdr, hdr_bits);
            w.push_bits(xor >> tz, len);
            win_lz = lz;
            win_tz = tz;
            win_len = len;
            have_window = true;
        }
    }
}

fn decode_words(
    r: &mut BitReader<'_>,
    count: usize,
    lay: Layout,
    mut emit: impl FnMut(u64),
) -> Result<()> {
    if count == 0 {
        return Ok(());
    }
    let first = r
        .read_bits(lay.bits)
        .ok_or_else(|| Error::Corrupt("gorilla: missing first value".into()))?;
    emit(first);
    let mut decoded = 1usize;
    let mut prev = first;
    let mut win_tz = 0u32;
    let mut win_len = lay.bits;
    let len_mask = (1u64 << lay.len_field) - 1;

    while decoded < count {
        // One peek covers the whole control prefix; `consume` still
        // bounds-checks, so truncated control bits surface as errors.
        let ctrl = r.peek_bits(2);
        if ctrl & 0b10 == 0 {
            r.consume(1)
                .ok_or_else(|| Error::Corrupt("gorilla: truncated control bit".into()))?;
            emit(prev);
            decoded += 1;
            continue;
        }
        r.consume(2)
            .ok_or_else(|| Error::Corrupt("gorilla: truncated control form".into()))?;
        let xor = if ctrl == 0b10 {
            // `10`: previous window.
            let bits = r
                .read_bits(win_len)
                .ok_or_else(|| Error::Corrupt("gorilla: truncated windowed bits".into()))?;
            bits << win_tz
        } else {
            // `11`: new window; lz count and stored length in one read.
            let hdr = r
                .read_bits(lay.lz_field + lay.len_field)
                .ok_or_else(|| Error::Corrupt("gorilla: truncated window header".into()))?;
            let lz = (hdr >> lay.len_field) as u32;
            let len = (hdr & len_mask) as u32 + 1;
            if lz + len > lay.bits {
                return Err(Error::Corrupt("gorilla: window exceeds word".into()));
            }
            let tz = lay.bits - lz - len;
            let bits = r
                .read_bits(len)
                .ok_or_else(|| Error::Corrupt("gorilla: truncated new-window bits".into()))?;
            win_tz = tz;
            win_len = len;
            bits << tz
        };
        prev ^= xor;
        emit(prev);
        decoded += 1;
    }
    Ok(())
}

impl Compressor for Gorilla {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "gorilla",
            year: 2015,
            community: Community::Database,
            class: CodecClass::Delta,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }

    /// Zero-allocation in steady state: the stream is emitted straight into
    /// `out` through a [`BitSink`], and words are read from the payload
    /// bytes without an intermediate vector. The reserve covers the
    /// worst-case stream (every value a fresh full-width window), so the
    /// sink's word spills never reallocate — even on the first call with a
    /// fresh buffer.
    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let lay = match data.desc().precision {
            Precision::Double => L64,
            Precision::Single => L32,
        };
        out.clear();
        out.reserve(worst_case_bytes(lay, data.elements()));
        push_u64(out, data.elements() as u64);
        let mut w = BitSink::new(out);
        match data.desc().precision {
            Precision::Double => encode_words(u64_words(data.bytes()), L64, &mut w),
            Precision::Single => encode_words(u32_words(data.bytes()).map(u64::from), L32, &mut w),
        }
        w.finish(); // spill the staged partial word before reading out.len()
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let mut pos = 0usize;
        let count = read_u64(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("gorilla: missing element count".into()))?
            as usize;
        if count != desc.elements() {
            return Err(Error::Corrupt(format!(
                "gorilla: stream holds {count} elements, descriptor expects {}",
                desc.elements()
            )));
        }
        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            let mut r = BitReader::new(&payload[pos..]);
            match desc.precision {
                Precision::Double => decode_words(&mut r, count, L64, |w| {
                    bytes.extend_from_slice(&w.to_le_bytes())
                }),
                Precision::Single => decode_words(&mut r, count, L32, |w| {
                    bytes.extend_from_slice(&(w as u32).to_le_bytes())
                }),
            }
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Dominant loop: per element one XOR, lz/tz counts, window compare,
        // and bit pushes — ~12 integer ops; reads the word, writes ~CR⁻¹ of it.
        let n = desc.elements() as u64;
        let esz = desc.precision.bytes() as u64;
        Some(OpProfile {
            int_ops: 12 * n,
            float_ops: 0,
            bytes_moved: 2 * n * esz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip_f64(vals: &[f64]) -> usize {
        let data = FloatData::from_f64(vals, vec![vals.len().max(1)], Domain::TimeSeries)
            .unwrap_or_else(|_| FloatData::from_f64(&[0.0], vec![1], Domain::TimeSeries).unwrap());
        let g = Gorilla::new();
        let c = g.compress(&data).unwrap();
        let d = g.decompress(&c, data.desc()).unwrap();
        assert_eq!(d.bytes(), data.bytes());
        c.len()
    }

    fn round_trip_f32(vals: &[f32]) -> usize {
        let data = FloatData::from_f32(vals, vec![vals.len()], Domain::TimeSeries).unwrap();
        let g = Gorilla::new();
        let c = g.compress(&data).unwrap();
        let d = g.decompress(&c, data.desc()).unwrap();
        assert_eq!(d.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn constant_series_compresses_to_bits() {
        let vals = vec![42.5f64; 10_000];
        let n = round_trip_f64(&vals);
        // 1 control bit per repeat: ~1250 bytes + first value + header.
        assert!(n < 1400, "constant series took {n} bytes");
    }

    #[test]
    fn slowly_varying_sensor_series() {
        let vals: Vec<f64> = (0..5000).map(|i| 20.0 + 0.001 * (i % 10) as f64).collect();
        let n = round_trip_f64(&vals);
        assert!(n < 5000 * 8, "should compress below raw size");
    }

    #[test]
    fn random_values_survive() {
        let mut x = 0x2545F4914F6CDD1Du64;
        let vals: Vec<f64> = (0..3000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits((x >> 12) | 0x3FF0_0000_0000_0000)
            })
            .collect();
        round_trip_f64(&vals);
    }

    #[test]
    fn special_values_round_trip() {
        round_trip_f64(&[
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
        ]);
    }

    #[test]
    fn single_element() {
        round_trip_f64(&[std::f64::consts::E]);
    }

    #[test]
    fn single_precision_round_trip() {
        let vals: Vec<f32> = (0..4000).map(|i| (i as f32 * 0.25).sin()).collect();
        round_trip_f32(&vals);
    }

    #[test]
    fn single_precision_specials() {
        round_trip_f32(&[0.0, -0.0, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE]);
    }

    #[test]
    fn window_reuse_beats_fresh_windows_on_stable_data() {
        // Values whose XOR stays in the same bit window: form `10` dominates.
        let base = 1000.0f64;
        let vals: Vec<f64> = (0..2000).map(|i| base + (i % 4) as f64).collect();
        let n = round_trip_f64(&vals);
        assert!(
            n < 2000 * 8 / 2,
            "window reuse should halve the size, got {n}"
        );
    }

    #[test]
    fn count_mismatch_rejected() {
        let data = FloatData::from_f64(&[1.0, 2.0], vec![2], Domain::TimeSeries).unwrap();
        let g = Gorilla::new();
        let c = g.compress(&data).unwrap();
        let wrong = DataDesc::new(Precision::Double, vec![3], Domain::TimeSeries).unwrap();
        assert!(g.decompress(&c, &wrong).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 1.7).collect();
        let data = FloatData::from_f64(&vals, vec![100], Domain::TimeSeries).unwrap();
        let g = Gorilla::new();
        let c = g.compress(&data).unwrap();
        assert!(g.decompress(&c[..c.len() / 2], data.desc()).is_err());
        assert!(g.decompress(&c[..4], data.desc()).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let info = Gorilla::new().info();
        assert_eq!(info.name, "gorilla");
        assert_eq!(info.year, 2015);
        assert_eq!(info.class, CodecClass::Delta);
        assert_eq!(info.platform, Platform::Cpu);
        assert!(!info.parallel);
    }
}

//! SPDP (Claggett, Azimi & Burtscher, DCC 2018; paper §3.2).
//!
//! SPDP was *synthesized*: the authors swept 9,400,320 component
//! combinations over 26 scientific datasets and kept the best four-stage
//! pipeline, which operates on the data as a raw **byte** stream: the
//! LNVs2 stride-2 byte differencer, the DIM8 8-way byte transpose that
//! clusters exponent bytes, the LNVs1 previous-byte differencer, and the
//! LZa6 sliding-window LZ77 reducer.
//!
//! **Component ordering note.** We apply DIM8 *before* the two LNV
//! differencers. With byte lanes grouped first, the stride differences
//! act within IEEE-754 lanes, turning near-constant sign/exponent lanes
//! into the zero runs SPDP's published ratios demonstrate (HPC domain
//! average 1.381, Table 4). Applying stride-2 differencing across the
//! interleaved little-endian layout instead subtracts mantissa noise from
//! exponent bytes and destroys that structure on any full-entropy-mantissa
//! data — measurably contradicting the paper's results, so we follow the
//! behaviour, not the (ambiguous) prose order. Every stage remains an
//! exactly invertible byte transform, unit-tested in isolation.

use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    PrecisionSupport, Result,
};
use fcbench_entropy::lz77::{self, Lz77Config};

/// SPDP codec with a configurable LZ window (the §3.2 insight: larger
/// windows raise ratio, cost throughput). Default matches `LZa6`-class
/// behaviour: 64 KiB window, shallow chains.
#[derive(Debug, Clone)]
pub struct Spdp {
    lz_config: Lz77Config,
}

impl Default for Spdp {
    fn default() -> Self {
        Self::new()
    }
}

impl Spdp {
    pub fn new() -> Self {
        Spdp {
            lz_config: Lz77Config::fast(),
        }
    }

    /// Custom LZ stage for the SPDP window-size ablation.
    pub fn with_lz_config(lz_config: Lz77Config) -> Self {
        Spdp { lz_config }
    }
}

/// Stage 1: residual of each byte against the byte 2 positions back.
pub fn lnvs2_forward(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (i, &b) in data.iter().enumerate() {
        let prev = if i >= 2 { data[i - 2] } else { 0 };
        out.push(b.wrapping_sub(prev));
    }
    out
}

/// Inverse of [`lnvs2_forward`].
pub fn lnvs2_inverse(data: &[u8]) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::with_capacity(data.len());
    for (i, &r) in data.iter().enumerate() {
        let prev = if i >= 2 { out[i - 2] } else { 0 };
        out.push(r.wrapping_add(prev));
    }
    out
}

/// Stage 2: 8-way byte transpose. The stream is viewed as rows of 8
/// bytes; output emits column 0 of every row, then column 1, etc.
/// A ragged tail (len % 8) is appended unchanged.
pub fn dim8_forward(data: &[u8]) -> Vec<u8> {
    let rows = data.len() / 8;
    let mut out = Vec::with_capacity(data.len());
    for col in 0..8 {
        for row in 0..rows {
            out.push(data[row * 8 + col]);
        }
    }
    out.extend_from_slice(&data[rows * 8..]);
    out
}

/// Inverse of [`dim8_forward`].
pub fn dim8_inverse(data: &[u8]) -> Vec<u8> {
    let rows = data.len() / 8;
    let mut out = vec![0u8; data.len()];
    let mut pos = 0;
    for col in 0..8 {
        for row in 0..rows {
            out[row * 8 + col] = data[pos];
            pos += 1;
        }
    }
    out[rows * 8..].copy_from_slice(&data[pos..]);
    out
}

/// Stage 3: residual of each byte against the immediately previous byte.
pub fn lnvs1_forward(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut prev = 0u8;
    for &b in data {
        out.push(b.wrapping_sub(prev));
        prev = b;
    }
    out
}

/// Inverse of [`lnvs1_forward`].
pub fn lnvs1_inverse(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut prev = 0u8;
    for &r in data {
        let b = r.wrapping_add(prev);
        out.push(b);
        prev = b;
    }
    out
}

impl Compressor for Spdp {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "spdp",
            year: 2018,
            community: Community::Hpc,
            class: CodecClass::Dictionary,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let s1 = dim8_forward(data.bytes());
        let s2 = lnvs2_forward(&s1);
        let s3 = lnvs1_forward(&s2);
        lz77::compress_into(&s3, self.lz_config, out);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let s3 = lz77::decompress(payload, desc.byte_len())
            .map_err(|e| Error::Corrupt(e.to_string()))?;
        let s2 = lnvs1_inverse(&s3);
        let s1 = lnvs2_inverse(&s2);
        out.refill(desc, |bytes| {
            bytes.extend_from_slice(&dim8_inverse(&s1));
            Ok(())
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Dominant kernel is the LZ stage's chained hash probing: per input
        // byte ~10 integer ops; the three transforms each re-read and
        // re-write the whole stream.
        let bytes = desc.byte_len() as u64;
        Some(OpProfile {
            int_ops: 10 * bytes,
            float_ops: 0,
            bytes_moved: 8 * bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    #[test]
    fn lnvs2_inverts() {
        for len in [0usize, 1, 2, 3, 9, 100] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            assert_eq!(lnvs2_inverse(&lnvs2_forward(&data)), data, "len {len}");
        }
    }

    #[test]
    fn lnvs1_inverts() {
        for len in [0usize, 1, 7, 64, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 91 % 256) as u8).collect();
            assert_eq!(lnvs1_inverse(&lnvs1_forward(&data)), data, "len {len}");
        }
    }

    #[test]
    fn dim8_inverts_including_ragged_tails() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 800, 805] {
            let data: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            assert_eq!(dim8_inverse(&dim8_forward(&data)), data, "len {len}");
        }
    }

    #[test]
    fn dim8_groups_msbs() {
        // 2 rows of 8: transpose puts bytes 0 and 8 first.
        let data: Vec<u8> = (0..16).collect();
        let t = dim8_forward(&data);
        assert_eq!(&t[..4], &[0, 8, 1, 9]);
    }

    #[test]
    fn lnvs2_exposes_stride2_correlation() {
        // Alternating pattern: stride-2 residuals are all zero after warmup.
        let data: Vec<u8> = (0..100)
            .map(|i| if i % 2 == 0 { 0xAA } else { 0x55 })
            .collect();
        let r = lnvs2_forward(&data);
        assert!(r[2..].iter().all(|&b| b == 0));
    }

    fn round_trip(data: &FloatData) -> usize {
        let s = Spdp::new();
        let c = s.compress(data).unwrap();
        let back = s.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn smooth_doubles_compress() {
        let vals: Vec<f64> = (0..8000).map(|i| 1e6 + i as f64 * 0.5).collect();
        let data = FloatData::from_f64(&vals, vec![8000], Domain::Hpc).unwrap();
        let n = round_trip(&data);
        assert!(n < 8000 * 8 / 2, "smooth ramp should halve, got {n}");
    }

    #[test]
    fn single_precision_round_trip() {
        let vals: Vec<f32> = (0..6000).map(|i| (i as f32 * 0.001).exp()).collect();
        let data = FloatData::from_f32(&vals, vec![6000], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn special_values() {
        let vals = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            5e-324,
        ];
        let data = FloatData::from_f64(&vals, vec![6], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn random_bytes_survive() {
        let mut x = 0xFEEDu64;
        let vals: Vec<f64> = (0..3000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                f64::from_bits(x)
            })
            .collect();
        let data = FloatData::from_f64(&vals, vec![3000], Domain::Database).unwrap();
        round_trip(&data);
    }

    #[test]
    fn bigger_window_never_hurts_ratio_much() {
        let vals: Vec<f64> = (0..10_000).map(|i| ((i % 512) as f64).sqrt()).collect();
        let data = FloatData::from_f64(&vals, vec![10_000], Domain::Hpc).unwrap();
        let small = Spdp::with_lz_config(Lz77Config {
            window: 1 << 12,
            chain_depth: 4,
        });
        let large = Spdp::with_lz_config(Lz77Config {
            window: 1 << 20,
            chain_depth: 64,
        });
        let cs = small.compress(&data).unwrap();
        let cl = large.compress(&data).unwrap();
        // Wide windows pay one extra offset byte per match, so allow a few
        // percent; the win shows on data with long-range repeats.
        assert!(
            cl.len() <= cs.len() + cs.len() / 20 + 64,
            "large window {} vs small {}",
            cl.len(),
            cs.len()
        );
        assert_eq!(
            large.decompress(&cl, data.desc()).unwrap().bytes(),
            data.bytes()
        );
    }

    #[test]
    fn corrupt_payload_rejected() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![100], Domain::Hpc).unwrap();
        let s = Spdp::new();
        let c = s.compress(&data).unwrap();
        assert!(s.decompress(&c[..c.len() / 2], data.desc()).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let info = Spdp::new().info();
        assert_eq!(info.name, "spdp");
        assert_eq!(info.year, 2018);
        assert_eq!(info.community, Community::Hpc);
    }
}

//! Chimp128 (Liakos, Papakonstantinopoulou & Kotidis, VLDB 2022; paper §3.5).
//!
//! Chimp refines Gorilla in two ways:
//!
//! 1. **Redesigned control bits.** Trailing zeros are only exploited when
//!    there are more than [`TZ_THRESHOLD`] of them; leading-zero counts are
//!    rounded into a 3-bit bucket code.
//! 2. **A 128-value sliding window** ("evicting queues ... grouped by their
//!    less significant bits"): the reference value for the XOR is the most
//!    recent of the previous 128 values sharing the current value's low
//!    bits, which maximizes trailing zeros of the residual. The chosen
//!    index is stored in ⌈log₂ 128⌉ = 7 bits.
//!
//! Control forms (2 bits each):
//!
//! - `00` — XOR with the indexed previous value is all zeros: 7-bit index;
//! - `01` — indexed reference with > threshold trailing zeros: 7-bit index,
//!   3-bit leading-zero bucket, 6-bit center length, center bits;
//! - `10` — reference is the immediately previous value and its
//!   leading-zero bucket equals the previous one: `bits − lz` bits verbatim;
//! - `11` — like `10` but with a fresh 3-bit leading-zero bucket first.

use crate::common::{push_u64, read_u64, u32_words, u64_words};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    Precision, PrecisionSupport, Result,
};
use fcbench_entropy::{BitReader, BitSink};
use std::cell::RefCell;

/// Residual trailing zeros must exceed this for the indexed (`01`) form.
pub const TZ_THRESHOLD: u32 = 6;

/// Window size (number of candidate previous values).
pub const WINDOW: usize = 128;

/// Leading-zero bucket boundaries for 64-bit words (the original Chimp
/// rounding table).
const LEADING_BUCKETS_64: [u32; 8] = [0, 8, 12, 16, 18, 20, 22, 24];
/// Scaled buckets for 32-bit words.
const LEADING_BUCKETS_32: [u32; 8] = [0, 4, 6, 8, 9, 10, 11, 12];

/// Chimp128 codec. `window` is configurable for the ablation bench
/// (window = 1 degrades to Gorilla-style previous-value referencing).
#[derive(Debug, Clone)]
pub struct Chimp {
    window: usize,
}

impl Default for Chimp {
    fn default() -> Self {
        Self::new()
    }
}

impl Chimp {
    /// Standard Chimp128.
    pub fn new() -> Self {
        Chimp { window: WINDOW }
    }

    /// Custom window size (must be a power of two, ≥ 1, ≤ 2¹⁶).
    pub fn with_window(window: usize) -> Self {
        assert!(window.is_power_of_two() && (1..=1 << 16).contains(&window));
        Chimp { window }
    }

    fn index_bits(&self) -> u32 {
        self.window.trailing_zeros().max(1)
    }
}

#[derive(Clone, Copy)]
struct Layout {
    bits: u32,
    buckets: &'static [u32; 8],
    /// Low bits of the value used as the similarity key.
    key_bits: u32,
    /// Field width for the center-bit length in the `01` form.
    center_field: u32,
}

const L64: Layout = Layout {
    bits: 64,
    buckets: &LEADING_BUCKETS_64,
    key_bits: 14,
    center_field: 6,
};
const L32: Layout = Layout {
    bits: 32,
    buckets: &LEADING_BUCKETS_32,
    key_bits: 10,
    center_field: 5,
};

/// Round a leading-zero count down to its bucket; returns (code, value).
fn bucket_of(lz: u32, buckets: &[u32; 8]) -> (u32, u32) {
    let mut code = 0;
    for (i, &b) in buckets.iter().enumerate() {
        if lz >= b {
            code = i as u32;
        }
    }
    (code, buckets[code as usize])
}

/// Backing storage for a [`Window`], kept per thread so the sliding-window
/// probe performs no steady-state allocation on a long-lived thread, even
/// when one `Chimp` instance is shared across threads. (The pipeline's
/// scoped workers are born per call, so they size this scratch once per
/// pipeline call, not once per block.)
#[derive(Default)]
struct WindowBufs {
    values: Vec<u64>,
    index: Vec<u64>,
}

thread_local! {
    static WINDOW_SCRATCH: RefCell<WindowBufs> = RefCell::new(WindowBufs::default());
}

/// Borrow this thread's window scratch, reset for `size`/`lay`, and run `f`.
fn with_window<R>(size: usize, lay: Layout, f: impl FnOnce(&mut Window<'_>) -> R) -> R {
    WINDOW_SCRATCH.with(|s| {
        let mut bufs = s.borrow_mut();
        let bufs = &mut *bufs;
        bufs.values.clear();
        bufs.values.resize(size, 0);
        bufs.index.clear();
        bufs.index.resize(1 << lay.key_bits, 0);
        let mut win = Window {
            values: &mut bufs.values,
            index: &mut bufs.index,
            key_mask: (1u64 << lay.key_bits) - 1,
            size,
        };
        f(&mut win)
    })
}

struct Window<'a> {
    values: &'a mut [u64],
    /// Most recent absolute position (+1; 0 = empty) per low-bits key.
    index: &'a mut [u64],
    key_mask: u64,
    size: usize,
}

impl Window<'_> {
    /// Candidate reference for `value` at absolute position `pos`:
    /// `(slot, stored_value)` of the latest same-key value still in the
    /// window, if any.
    fn candidate(&self, value: u64, pos: usize) -> Option<(usize, u64)> {
        let key = (value & self.key_mask) as usize;
        let stored = self.index[key];
        if stored == 0 {
            return None;
        }
        let cand_pos = (stored - 1) as usize;
        if pos - cand_pos > self.size {
            return None;
        }
        let slot = cand_pos % self.size;
        Some((slot, self.values[slot]))
    }

    fn insert(&mut self, value: u64, pos: usize) {
        let key = (value & self.key_mask) as usize;
        self.index[key] = (pos + 1) as u64;
        self.values[pos % self.size] = value;
    }

    fn value_at_slot(&self, slot: usize) -> u64 {
        self.values[slot]
    }
}

fn encode_words(
    mut words: impl Iterator<Item = u64>,
    lay: Layout,
    window_size: usize,
    idx_bits: u32,
    w: &mut BitSink<'_>,
) {
    let Some(first) = words.next() else {
        return;
    };
    with_window(window_size, lay, |win| {
        w.push_bits(first, lay.bits);
        win.insert(first, 0);
        let mut prev = first;
        let mut prev_lz_bucket = u32::MAX;
        // Fused header widths, hoisted out of the per-value loop.
        let hdr00_bits = 2 + idx_bits;
        let hdr01_bits = 2 + idx_bits + 3 + lay.center_field;

        // Emit the previous-value fallback forms: `10` (bucket repeat,
        // fused with the payload when it fits one push) or `11` (fresh
        // 3-bit bucket code fused into a 5-bit header).
        let mut push_prev_form = |w: &mut BitSink<'_>, code: u32, stored: u32, xor: u64| {
            if code == prev_lz_bucket {
                if stored <= 62 {
                    w.push_bits((0b10u64 << stored) | xor, stored + 2);
                } else {
                    w.push_bits(0b10, 2);
                    w.push_bits(xor, stored);
                }
            } else {
                w.push_bits((0b11u64 << 3) | code as u64, 5);
                w.push_bits(xor, stored);
                prev_lz_bucket = code;
            }
        };

        for (k, cur) in words.enumerate().map(|(k, cur)| (k + 1, cur)) {
            // Probe the window for a same-low-bits reference.
            let candidate = win.candidate(cur, k);
            let indexed = candidate.and_then(|(slot, val)| {
                let xor = cur ^ val;
                if xor == 0 || xor.trailing_zeros().min(lay.bits) > TZ_THRESHOLD {
                    Some((slot, xor))
                } else {
                    None
                }
            });

            match indexed {
                Some((slot, 0)) => {
                    // `00`: exact repeat of an in-window value; control and
                    // index in one push.
                    w.push_bits(slot as u64, hdr00_bits);
                }
                Some((slot, xor)) => {
                    // `01`: indexed reference, big trailing-zero run. The
                    // control bits, index, bucket code, and center length
                    // fuse into a single header push (≤ 27 bits).
                    let lz = xor.leading_zeros() - (64 - lay.bits);
                    let (code, lz_rounded) = bucket_of(lz, lay.buckets);
                    let tz = xor.trailing_zeros();
                    let center = lay.bits - lz_rounded - tz;
                    // center ∈ [1, bits − threshold); store center − 1.
                    let hdr = (((0b01u64 << idx_bits) | slot as u64) << 3 | code as u64)
                        << lay.center_field
                        | (center - 1) as u64;
                    w.push_bits(hdr, hdr01_bits);
                    w.push_bits(xor >> tz, center);
                }
                None => {
                    // Fall back to the previous value as reference.
                    let xor = cur ^ prev;
                    if xor == 0 {
                        // Rare (a zero xor with prev would normally hit the
                        // window path), but reachable when the window slot was
                        // overwritten. Use the `10`/`11` forms with full width.
                        let (code, lz_rounded) = bucket_of(lay.bits - 1, lay.buckets);
                        push_prev_form(w, code, lay.bits - lz_rounded, 0);
                    } else {
                        let lz = xor.leading_zeros() - (64 - lay.bits);
                        let (code, lz_rounded) = bucket_of(lz, lay.buckets);
                        push_prev_form(w, code, lay.bits - lz_rounded, xor);
                    }
                }
            }
            win.insert(cur, k);
            prev = cur;
        }
    })
}

fn decode_words(
    r: &mut BitReader<'_>,
    count: usize,
    lay: Layout,
    window_size: usize,
    idx_bits: u32,
    mut emit: impl FnMut(u64),
) -> Result<()> {
    if count == 0 {
        return Ok(());
    }
    let first = r
        .read_bits(lay.bits)
        .ok_or_else(|| Error::Corrupt("chimp: missing first value".into()))?;
    emit(first);
    with_window(window_size, lay, |win| {
        win.insert(first, 0);
        let mut prev = first;
        // Width of the verbatim field for the `10` form; set by each `11`.
        let mut prev_stored = lay.bits;

        for k in 1..count {
            let form = r
                .read_bits(2)
                .ok_or_else(|| Error::Corrupt("chimp: truncated control".into()))?;
            let cur = match form {
                0b00 => {
                    let slot = r
                        .read_bits(idx_bits)
                        .ok_or_else(|| Error::Corrupt("chimp: truncated index".into()))?
                        as usize;
                    if slot >= window_size {
                        return Err(Error::Corrupt("chimp: index out of window".into()));
                    }
                    win.value_at_slot(slot)
                }
                0b01 => {
                    // Index, bucket code, and center length in one read.
                    let hdr = r
                        .read_bits(idx_bits + 3 + lay.center_field)
                        .ok_or_else(|| Error::Corrupt("chimp: truncated 01-form header".into()))?;
                    let slot = (hdr >> (3 + lay.center_field)) as usize;
                    if slot >= window_size {
                        return Err(Error::Corrupt("chimp: index out of window".into()));
                    }
                    let code = ((hdr >> lay.center_field) & 0b111) as usize;
                    let lz = lay.buckets[code];
                    let center = (hdr & ((1u64 << lay.center_field) - 1)) as u32 + 1;
                    if lz + center > lay.bits {
                        return Err(Error::Corrupt("chimp: center exceeds word".into()));
                    }
                    let tz = lay.bits - lz - center;
                    let bits = r
                        .read_bits(center)
                        .ok_or_else(|| Error::Corrupt("chimp: truncated center bits".into()))?;
                    win.value_at_slot(slot) ^ (bits << tz)
                }
                0b10 => {
                    let bits = r
                        .read_bits(prev_stored)
                        .ok_or_else(|| Error::Corrupt("chimp: truncated 10-form bits".into()))?;
                    prev ^ bits
                }
                _ => {
                    let code = r
                        .read_bits(3)
                        .ok_or_else(|| Error::Corrupt("chimp: truncated 11-form code".into()))?
                        as usize;
                    let lz = lay.buckets[code];
                    let stored = lay.bits - lz;
                    prev_stored = stored;
                    let bits = r
                        .read_bits(stored)
                        .ok_or_else(|| Error::Corrupt("chimp: truncated 11-form bits".into()))?;
                    prev ^ bits
                }
            };
            win.insert(cur, k);
            prev = cur;
            emit(cur);
        }
        Ok(())
    })
}

impl Compressor for Chimp {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "chimp128",
            year: 2022,
            community: Community::Database,
            class: CodecClass::Dictionary,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }

    /// Zero-allocation in steady state: bits are emitted straight into `out`
    /// through a [`BitSink`], words stream from the payload bytes, and the
    /// 128-value window lives in thread-local scratch. The reserve covers
    /// the worst-case stream (every value an `01` form with a full-width
    /// center), so the sink's word spills never reallocate.
    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let idx_bits = self.index_bits();
        let lay = match data.desc().precision {
            Precision::Double => L64,
            Precision::Single => L32,
        };
        // Worst case per value across all four forms: the `01` header plus
        // a center as wide as the word.
        let per_value = (2 + idx_bits + 3 + lay.center_field + lay.bits) as usize;
        let stream_bits = lay.bits as usize + data.elements().saturating_sub(1) * per_value;
        out.clear();
        out.reserve(8 + stream_bits.div_ceil(8));
        push_u64(out, data.elements() as u64);
        let mut w = BitSink::new(out);
        match data.desc().precision {
            Precision::Double => {
                encode_words(u64_words(data.bytes()), L64, self.window, idx_bits, &mut w)
            }
            Precision::Single => encode_words(
                u32_words(data.bytes()).map(u64::from),
                L32,
                self.window,
                idx_bits,
                &mut w,
            ),
        }
        w.finish(); // spill the staged partial word before reading out.len()
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let mut pos = 0usize;
        let count = read_u64(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("chimp: missing element count".into()))?
            as usize;
        if count != desc.elements() {
            return Err(Error::Corrupt("chimp: element count mismatch".into()));
        }
        let idx_bits = self.index_bits();
        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            let mut r = BitReader::new(&payload[pos..]);
            match desc.precision {
                Precision::Double => decode_words(&mut r, count, L64, self.window, idx_bits, |w| {
                    bytes.extend_from_slice(&w.to_le_bytes())
                }),
                Precision::Single => decode_words(&mut r, count, L32, self.window, idx_bits, |w| {
                    bytes.extend_from_slice(&(w as u32).to_le_bytes())
                }),
            }
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Dominant loop adds the window probe (hash + compare) to Gorilla's
        // XOR work: ~20 integer ops per element; the window adds a read of
        // one stored word per element.
        let n = desc.elements() as u64;
        let esz = desc.precision.bytes() as u64;
        Some(OpProfile {
            int_ops: 20 * n,
            float_ops: 0,
            bytes_moved: 3 * n * esz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip_f64(vals: &[f64]) -> usize {
        let data = FloatData::from_f64(vals, vec![vals.len()], Domain::TimeSeries).unwrap();
        let c = Chimp::new();
        let payload = c.compress(&data).unwrap();
        let back = c.decompress(&payload, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        payload.len()
    }

    fn round_trip_f32(vals: &[f32]) -> usize {
        let data = FloatData::from_f32(vals, vec![vals.len()], Domain::TimeSeries).unwrap();
        let c = Chimp::new();
        let payload = c.compress(&data).unwrap();
        let back = c.decompress(&payload, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        payload.len()
    }

    #[test]
    fn constant_series() {
        let n = round_trip_f64(&[std::f64::consts::PI; 5000]);
        // form `00` costs 9 bits per element.
        assert!(n < 5000 * 2, "constant series took {n} bytes");
    }

    #[test]
    fn repeating_cycle_hits_the_window() {
        // A cycle of 32 distinct full-mantissa values: Gorilla sees
        // "changes", Chimp's window finds exact repeats (form 00). The
        // values need distinct low bits for the similarity key to work —
        // sqrt gives dense mantissas.
        let cycle: Vec<f64> = (0..32).map(|i| (2.0 + i as f64).sqrt()).collect();
        let vals: Vec<f64> = (0..8000).map(|i| cycle[i % 32]).collect();
        let chimp_size = round_trip_f64(&vals);

        let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::TimeSeries).unwrap();
        let gorilla = crate::gorilla::Gorilla::new();
        let gorilla_size = gorilla.compress(&data).unwrap().len();
        assert!(
            chimp_size < gorilla_size,
            "chimp ({chimp_size}) should beat gorilla ({gorilla_size}) on cyclic data"
        );
    }

    #[test]
    fn noisy_random_values_survive() {
        let mut x = 88172645463325252u64;
        let vals: Vec<f64> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits((x >> 2) | 0x3FF0_0000_0000_0000)
            })
            .collect();
        round_trip_f64(&vals);
    }

    #[test]
    fn special_values() {
        round_trip_f64(&[
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
            1.0,
        ]);
        round_trip_f32(&[0.0, -0.0, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE, -1.5]);
    }

    #[test]
    fn single_precision_series() {
        let vals: Vec<f32> = (0..6000).map(|i| 100.0 + (i % 50) as f32 * 0.5).collect();
        let n = round_trip_f32(&vals);
        assert!(n < 6000 * 4);
    }

    #[test]
    fn window_one_still_round_trips() {
        let c = Chimp::with_window(1);
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let data = FloatData::from_f64(&vals, vec![1000], Domain::TimeSeries).unwrap();
        let payload = c.compress(&data).unwrap();
        let back = c.decompress(&payload, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn larger_windows_help_on_mixed_streams() {
        // Interleaved channels: channel values repeat at stride 8.
        let vals: Vec<f64> = (0..8000)
            .map(|i| {
                let channel = i % 8;
                1000.0 * channel as f64 + ((i / 8) % 3) as f64 * 0.001
            })
            .collect();
        let data = FloatData::from_f64(&vals, vec![8000], Domain::TimeSeries).unwrap();
        let small = Chimp::with_window(2).compress(&data).unwrap().len();
        let big = Chimp::with_window(128).compress(&data).unwrap().len();
        assert!(
            big <= small,
            "window 128 ({big}) should not lose to window 2 ({small})"
        );
    }

    #[test]
    fn truncation_rejected() {
        let vals: Vec<f64> = (0..500).map(|i| i as f64 * 0.37).collect();
        let data = FloatData::from_f64(&vals, vec![500], Domain::TimeSeries).unwrap();
        let c = Chimp::new();
        let payload = c.compress(&data).unwrap();
        assert!(c
            .decompress(&payload[..payload.len() / 3], data.desc())
            .is_err());
        assert!(c.decompress(&[], data.desc()).is_err());
    }

    #[test]
    fn bucket_rounding_is_monotone() {
        for lz in 0..64 {
            let (code, rounded) = bucket_of(lz, &LEADING_BUCKETS_64);
            assert!(rounded <= lz);
            assert!(code < 8);
            if lz >= 24 {
                assert_eq!(rounded, 24);
            }
        }
    }

    #[test]
    fn info_matches_table1() {
        let info = Chimp::new().info();
        assert_eq!(info.name, "chimp128");
        assert_eq!(info.year, 2022);
        assert_eq!(info.class, CodecClass::Dictionary);
    }
}

//! Gorilla timestamp compression — the §3.4 workflow's first half.
//!
//! "Given that time series data are often represented as pairs of a
//! timestamp and a value, Gorilla uses two different methods: (1) It uses
//! delta-of-delta to compress timestamps. With the fixed interval of time
//! series data, the majority of timestamps can be encoded as a single bit
//! of 0."
//!
//! Control codes follow the original design: regular intervals cost one
//! bit, small jitters a few bits, arbitrary gaps fall back to wide fields:
//!
//! | code | range of D (delta-of-delta) | payload bits |
//! |---|---|---|
//! | `0` | D = 0 | 0 |
//! | `10` | [−63, 64] | 7 |
//! | `110` | [−255, 256] | 9 |
//! | `1110` | [−2047, 2048] | 12 |
//! | `1111` | anything | 64 |
//!
//! (The original uses 32 bits in the last bucket for its 2-hour blocks;
//! this implementation is block-agnostic, so the fallback is 64 bits.)
//!
//! The main FCBench matrix compresses value arrays — Table 3's datasets
//! carry no timestamp column — so this lives beside the value codec as
//! the complete §3.4 pipeline for time-series use.

use fcbench_core::{Error, Result};
use fcbench_entropy::{BitReader, BitWriter};

/// Compress a monotone (or arbitrary) i64 timestamp sequence.
pub fn compress_timestamps(timestamps: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(timestamps.len() + 16);
    out.extend_from_slice(&(timestamps.len() as u64).to_le_bytes());
    let mut w = BitWriter::with_capacity(timestamps.len() / 4 + 16);

    if let Some(&first) = timestamps.first() {
        // The leading 64-bit fields sit on byte boundaries: bulk-copy them
        // (big-endian matches the MSB-first bit layout bit-for-bit).
        w.extend_aligned(&(first as u64).to_be_bytes());
        if timestamps.len() > 1 {
            let first_delta = timestamps[1].wrapping_sub(first);
            w.extend_aligned(&(first_delta as u64).to_be_bytes());
        }
    }
    let mut prev = *timestamps
        .get(1)
        .unwrap_or(timestamps.first().unwrap_or(&0));
    let mut prev_delta = if timestamps.len() > 1 {
        timestamps[1].wrapping_sub(timestamps[0])
    } else {
        0
    };
    for &ts in timestamps.iter().skip(2) {
        let delta = ts.wrapping_sub(prev);
        let dod = delta.wrapping_sub(prev_delta);
        // Control code and payload fuse into a single push per point.
        match dod {
            0 => w.push_bit(false),
            -63..=64 => w.push_bits((0b10u64 << 7) | (dod + 63) as u64, 9),
            -255..=256 => w.push_bits((0b110u64 << 9) | (dod + 255) as u64, 12),
            -2047..=2048 => w.push_bits((0b1110u64 << 12) | (dod + 2047) as u64, 16),
            _ => {
                w.push_bits(0b1111, 4);
                w.push_bits(dod as u64, 64);
            }
        }
        prev = ts;
        prev_delta = delta;
    }
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Decompress a [`compress_timestamps`] stream.
pub fn decompress_timestamps(payload: &[u8]) -> Result<Vec<i64>> {
    if payload.len() < 8 {
        return Err(Error::Corrupt("gorilla-ts: missing count".into()));
    }
    let count = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")) as usize;
    let mut r = BitReader::new(&payload[8..]);
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let be64 = |s: &[u8]| i64::from_be_bytes(s.try_into().expect("8 bytes"));
    let first = r
        .read_aligned_bytes(8)
        .map(be64)
        .ok_or_else(|| Error::Corrupt("gorilla-ts: missing first timestamp".into()))?;
    out.push(first);
    if count == 1 {
        return Ok(out);
    }
    let first_delta = r
        .read_aligned_bytes(8)
        .map(be64)
        .ok_or_else(|| Error::Corrupt("gorilla-ts: missing first delta".into()))?;
    let mut prev = first.wrapping_add(first_delta);
    out.push(prev);
    let mut prev_delta = first_delta;

    while out.len() < count {
        let trunc = |msg: &str| Error::Corrupt(format!("gorilla-ts: {msg}"));
        // One peek covers the widest control prefix; each arm consumes the
        // actual code+payload width (with the bounds check a plain read
        // would have done, so truncated streams still error).
        let ctrl = r.peek_bits(4);
        let dod = if ctrl & 0b1000 == 0 {
            r.consume(1).ok_or_else(|| trunc("truncated control"))?;
            0i64
        } else if ctrl & 0b0100 == 0 {
            let f = r
                .read_bits(9)
                .ok_or_else(|| trunc("truncated `10` code + 7-bit field"))?;
            (f & 0x7F) as i64 - 63
        } else if ctrl & 0b0010 == 0 {
            let f = r
                .read_bits(12)
                .ok_or_else(|| trunc("truncated `110` code + 9-bit field"))?;
            (f & 0x1FF) as i64 - 255
        } else if ctrl & 0b0001 == 0 {
            let f = r
                .read_bits(16)
                .ok_or_else(|| trunc("truncated `1110` code + 12-bit field"))?;
            (f & 0xFFF) as i64 - 2047
        } else {
            r.consume(4).ok_or_else(|| trunc("truncated control"))?;
            r.read_bits(64)
                .ok_or_else(|| trunc("truncated 64-bit field"))? as i64
        };
        let delta = prev_delta.wrapping_add(dod);
        prev = prev.wrapping_add(delta);
        prev_delta = delta;
        out.push(prev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ts: &[i64]) -> usize {
        let c = compress_timestamps(ts);
        assert_eq!(decompress_timestamps(&c).expect("decompress"), ts);
        c.len()
    }

    #[test]
    fn empty_single_and_pair() {
        round_trip(&[]);
        round_trip(&[1_700_000_000]);
        round_trip(&[1_700_000_000, 1_700_000_060]);
    }

    #[test]
    fn fixed_interval_costs_one_bit_per_point() {
        // The paper: "the majority of timestamps can be encoded as a
        // single bit of 0".
        let ts: Vec<i64> = (0..100_000).map(|i| 1_700_000_000 + 60 * i).collect();
        let n = round_trip(&ts);
        // 16 header bytes + 16 first-entry bytes + ~1 bit per point.
        assert!(n < 100_000 / 8 + 64, "regular series took {n} bytes");
    }

    #[test]
    fn jittered_interval_uses_small_fields() {
        let mut t = 1_700_000_000i64;
        let mut x = 42u64;
        let ts: Vec<i64> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                t += 60 + ((x >> 60) as i64 - 8); // +/- 8s jitter
                t
            })
            .collect();
        let n = round_trip(&ts);
        // 9 bits/point worst case for this jitter band.
        assert!(n < 10_000 * 2, "jittered series took {n} bytes");
    }

    #[test]
    fn gaps_and_out_of_order_survive() {
        round_trip(&[100, 160, 220, 100_000_000, 100_000_060, 50, 110]);
    }

    #[test]
    fn extreme_values_survive() {
        round_trip(&[i64::MIN, i64::MAX, 0, -1, 1, i64::MAX, i64::MIN]);
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // D values exactly at each control-code boundary.
        let mut ts = vec![0i64, 60];
        let mut t = 60i64;
        let mut d = 60i64;
        for dod in [0, -63, 64, -255, 256, -2047, 2048, -2048, 2049, 1_000_000] {
            d += dod;
            t += d;
            ts.push(t);
        }
        round_trip(&ts);
    }

    #[test]
    fn truncation_rejected() {
        let ts: Vec<i64> = (0..100).map(|i| 1000 + 5 * i).collect();
        let c = compress_timestamps(&ts);
        assert!(decompress_timestamps(&c[..4]).is_err());
        assert!(decompress_timestamps(&c[..c.len() / 2]).is_err());
    }
}

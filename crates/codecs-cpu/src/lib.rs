//! # fcbench-codecs-cpu
//!
//! Pure-Rust implementations of the eight CPU-based lossless floating-point
//! compressors surveyed in FCBench §3:
//!
//! | Codec | Paper § | Class | Parallel |
//! |---|---|---|---|
//! | [`Fpzip`] | 3.1 | Lorenzo + range coding | serial |
//! | [`Spdp`] | 3.2 | byte transforms + LZ77 | serial |
//! | [`Buff`] | 3.3 | bounded decimal delta, byte columns | serial |
//! | [`Gorilla`] | 3.4 | XOR delta | serial |
//! | [`Chimp`] | 3.5 | XOR + 128-value window | serial |
//! | [`Pfpc`] | 3.6 | FCM/DFCM hash prediction | threads |
//! | [`Bitshuffle`] | 3.7 | bit transpose + LZ4/zstd-class | threads |
//! | [`Ndzip`] | 3.8 | integer Lorenzo + transpose | threads |
//!
//! Every codec implements [`fcbench_core::Compressor`] and round-trips
//! bit-exactly (NaN payloads and signed zeros included).

#![forbid(unsafe_code)]

pub mod bitshuffle;
pub mod buff;
pub mod chimp;
pub mod common;
pub mod fpzip;
pub mod gorilla;
pub mod gorilla_ts;
pub mod ndzip;
pub mod pfpc;
pub mod predictor;
pub mod spdp;

pub use bitshuffle::{Backend, Bitshuffle};
pub use buff::{Buff, BuffView};
pub use chimp::Chimp;
pub use fpzip::Fpzip;
pub use gorilla::Gorilla;
pub use gorilla_ts::{compress_timestamps, decompress_timestamps};
pub use ndzip::Ndzip;
pub use pfpc::Pfpc;
pub use predictor::{Predictor, PredictorKind};
pub use spdp::Spdp;

//! pFPC (Burtscher & Ratanaworabhan, DCC 2009; paper §3.6).
//!
//! FPC predicts each 64-bit word with two hash-table predictors —
//! **FCM** (finite context) and **DFCM** (differential finite context) —
//! XORs the better prediction with the true value, and encodes the result
//! as a 4-bit code (1 bit predictor selector + 3 bits leading-zero-byte
//! count, with the rare count of 4 folded into 3) followed by the non-zero
//! residual bytes. pFPC parallelizes by splitting the input into chunks
//! compressed independently on `threads` OS threads, each with private
//! predictor tables.
//!
//! The stream is processed as raw u64 words regardless of the nominal
//! precision (FPC treats everything as doubles); a non-multiple-of-8 tail
//! is stored verbatim. The paper's §3.6 insight — aligning thread count
//! with data dimensionality preserves per-dimension correlation — is
//! exercised by the `ablation_pfpc` bench via [`Pfpc::with_threads`].

use crate::common::{chunk_ranges, push_u32, push_u64, read_u32, read_u64};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    PrecisionSupport, Result,
};
use std::cell::RefCell;

/// Below this many words both directions run their chunks inline on the
/// calling thread: the chunk layout (and therefore the stream) is
/// identical either way, and at benchmark block sizes the per-call spawn
/// cost would dwarf the predictor work itself.
const PARALLEL_WORDS: usize = 1 << 16;

/// Log2 of the predictor hash-table sizes.
const TABLE_LOG: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_LOG;

/// Leading-zero-byte counts representable by the 3-bit code.
/// Count 4 is folded down to 3 (the original FPC design: 4 is rare).
const LZB_TABLE: [u32; 8] = [0, 1, 2, 3, 5, 6, 7, 8];

#[inline]
fn lzb_to_code(lzb: u32) -> u32 {
    match lzb {
        0..=3 => lzb,
        4 => 3,
        5..=8 => lzb - 1,
        _ => 7,
    }
}

/// The pFPC codec.
#[derive(Debug, Clone)]
pub struct Pfpc {
    threads: usize,
}

impl Default for Pfpc {
    fn default() -> Self {
        Self::new()
    }
}

impl Pfpc {
    /// Default 8 threads, as in the original release.
    pub fn new() -> Self {
        Pfpc { threads: 8 }
    }

    pub fn with_threads(threads: usize) -> Self {
        Pfpc {
            threads: threads.max(1),
        }
    }
}

/// Reusable FCM/DFCM tables. A chunk touches at most `chunk_len` slots of
/// each 512 KB table, so zeroing the whole pair per chunk (the original
/// `vec![0; TABLE_SIZE]` allocation) costs more than the predictor work at
/// benchmark chunk sizes. Instead the tables live in thread-local scratch
/// with an all-zero invariant: every slot written during a chunk is
/// recorded and re-zeroed afterwards — including on corrupt-stream error
/// paths, so a failed decode cannot poison the next call's predictions.
struct PredictorScratch {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    touched_fcm: Vec<u32>,
    touched_dfcm: Vec<u32>,
}

impl PredictorScratch {
    const fn new() -> Self {
        PredictorScratch {
            fcm: Vec::new(),
            dfcm: Vec::new(),
            touched_fcm: Vec::new(),
            touched_dfcm: Vec::new(),
        }
    }

    fn ensure(&mut self) {
        if self.fcm.is_empty() {
            self.fcm.resize(TABLE_SIZE, 0);
            self.dfcm.resize(TABLE_SIZE, 0);
        }
    }

    /// Restore the all-zero invariant by clearing exactly the slots the
    /// finished chunk wrote.
    fn reset(&mut self) {
        for &s in &self.touched_fcm {
            self.fcm[s as usize] = 0;
        }
        for &s in &self.touched_dfcm {
            self.dfcm[s as usize] = 0;
        }
        self.touched_fcm.clear();
        self.touched_dfcm.clear();
    }
}

thread_local! {
    static PFPC_SCRATCH: RefCell<PredictorScratch> = const { RefCell::new(PredictorScratch::new()) };
}

/// Compress one chunk of words (given as raw little-endian bytes, length a
/// multiple of 8) with private predictor state, appending the chunk
/// payload to `out`. Byte-identical to the original per-word
/// implementation: same predictions, same nibble packing, same residual
/// order — but the code region is written in place (its size is known up
/// front) and each residual is one bulk 8-byte store truncated to the
/// width its code claims.
fn compress_chunk_into(bytes: &[u8], out: &mut Vec<u8>) {
    let count = bytes.len() / 8;
    let ncodes = count.div_ceil(2);
    let base = out.len();
    push_u32(out, ncodes as u32);
    push_u32(out, 0); // residual byte count, patched below
    let code_base = out.len();
    out.resize(code_base + ncodes, 0);
    out.reserve(count * 4);

    PFPC_SCRATCH.with_borrow_mut(|scr| {
        scr.ensure();
        let mut fcm_hash = 0usize;
        let mut dfcm_hash = 0usize;
        let mut last = 0u64;
        for (i, w) in bytes.chunks_exact(8).enumerate() {
            let val = u64::from_le_bytes(w.try_into().expect("8 bytes"));
            let xf = val ^ scr.fcm[fcm_hash];
            let xd = val ^ scr.dfcm[dfcm_hash].wrapping_add(last);
            let (sel, xor) = if xf <= xd { (0u32, xf) } else { (1u32, xd) };
            let lzb = (xor.leading_zeros() / 8).min(8);
            // The code table may claim fewer leading zero bytes than
            // actual (4 -> 3); residual bytes are emitted per the *code*.
            let code = lzb_to_code(lzb);
            let nib = (sel << 3) | code;
            if i & 1 == 0 {
                out[code_base + i / 2] = (nib << 4) as u8;
            } else {
                out[code_base + i / 2] |= nib as u8;
            }
            let eb = (8 - LZB_TABLE[code as usize]) as usize;
            let res_start = out.len();
            out.extend_from_slice(&xor.to_le_bytes());
            out.truncate(res_start + eb);

            scr.touched_fcm.push(fcm_hash as u32);
            scr.fcm[fcm_hash] = val;
            fcm_hash = ((fcm_hash << 6) ^ (val >> 48) as usize) & (TABLE_SIZE - 1);
            let delta = val.wrapping_sub(last);
            scr.touched_dfcm.push(dfcm_hash as u32);
            scr.dfcm[dfcm_hash] = delta;
            dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40) as usize) & (TABLE_SIZE - 1);
            last = val;
        }
        scr.reset();
    });

    let nres = (out.len() - code_base - ncodes) as u32;
    out[base + 4..base + 8].copy_from_slice(&nres.to_le_bytes());
}

/// Decompress one chunk of `count` words into `dst` (`count * 8` bytes).
///
/// Accepts and rejects exactly the same payloads as the original
/// Vec-returning decoder; the decoded words land directly in the caller's
/// output region instead of a per-chunk heap buffer.
fn decompress_chunk_into(payload: &[u8], count: usize, dst: &mut [u8]) -> Result<()> {
    debug_assert_eq!(dst.len(), count * 8);
    let mut pos = 0usize;
    let ncodes = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("pfpc: missing code count".into()))?
        as usize;
    let nres = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("pfpc: missing residual count".into()))?
        as usize;
    let codes = payload
        .get(pos..pos + ncodes)
        .ok_or_else(|| Error::Corrupt("pfpc: code bytes truncated".into()))?;
    let residuals = payload
        .get(pos + ncodes..pos + ncodes + nres)
        .ok_or_else(|| Error::Corrupt("pfpc: residual bytes truncated".into()))?;
    if ncodes != count.div_ceil(2) {
        return Err(Error::Corrupt("pfpc: code count mismatch".into()));
    }

    PFPC_SCRATCH.with_borrow_mut(|scr| {
        scr.ensure();
        let result = (|| {
            let mut fcm_hash = 0usize;
            let mut dfcm_hash = 0usize;
            let mut last = 0u64;
            let mut rpos = 0usize;
            for idx in 0..count {
                let cb = codes[idx / 2];
                let nib = if idx & 1 == 0 {
                    (cb >> 4) as u32
                } else {
                    (cb & 0x0F) as u32
                };
                let sel = nib >> 3;
                let code = nib & 7;
                let eb = (8 - LZB_TABLE[code as usize]) as usize;
                // Word path: one unaligned 8-byte load + mask covers every
                // residual width; the byte-copy loop only runs for the
                // last few residuals of the chunk.
                let xor = if let Some(s) = residuals.get(rpos..rpos + 8) {
                    let w = u64::from_le_bytes(s.try_into().expect("8 bytes"));
                    if eb == 8 {
                        w
                    } else {
                        w & ((1u64 << (8 * eb)) - 1)
                    }
                } else {
                    let rbytes = residuals
                        .get(rpos..rpos + eb)
                        .ok_or_else(|| Error::Corrupt("pfpc: residual stream truncated".into()))?;
                    let mut le = [0u8; 8];
                    le[..eb].copy_from_slice(rbytes);
                    u64::from_le_bytes(le)
                };
                rpos += eb;
                let pred = if sel == 0 {
                    scr.fcm[fcm_hash]
                } else {
                    scr.dfcm[dfcm_hash].wrapping_add(last)
                };
                let val = pred ^ xor;

                scr.touched_fcm.push(fcm_hash as u32);
                scr.fcm[fcm_hash] = val;
                fcm_hash = ((fcm_hash << 6) ^ (val >> 48) as usize) & (TABLE_SIZE - 1);
                let delta = val.wrapping_sub(last);
                scr.touched_dfcm.push(dfcm_hash as u32);
                scr.dfcm[dfcm_hash] = delta;
                dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40) as usize) & (TABLE_SIZE - 1);
                last = val;

                dst[idx * 8..idx * 8 + 8].copy_from_slice(&val.to_le_bytes());
            }
            if rpos != residuals.len() {
                return Err(Error::Corrupt("pfpc: trailing residual bytes".into()));
            }
            Ok(())
        })();
        scr.reset();
        result
    })
}

impl Compressor for Pfpc {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "pfpc",
            year: 2009,
            community: Community::Hpc,
            class: CodecClass::Prediction,
            platform: Platform::Cpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let bytes = data.bytes();
        let nwords = bytes.len() / 8;
        let word_bytes = &bytes[..nwords * 8];
        let tail = &bytes[nwords * 8..];

        let ranges = chunk_ranges(nwords, self.threads);
        out.clear();
        push_u64(out, nwords as u64);
        push_u32(out, ranges.len() as u32);
        out.push(tail.len() as u8);
        let dir_base = out.len();

        if nwords < PARALLEL_WORDS {
            // Inline: compress each chunk straight into the frame (no
            // per-chunk buffers, no words materialization), patching the
            // size directory — which precedes the payloads on the wire —
            // as each chunk's length becomes known.
            for _ in 0..ranges.len() {
                push_u32(out, 0);
            }
            for (k, &(start, end)) in ranges.iter().enumerate() {
                let before = out.len();
                compress_chunk_into(&word_bytes[start * 8..end * 8], out);
                let sz = ((out.len() - before) as u32).to_le_bytes();
                out[dir_base + 4 * k..dir_base + 4 * k + 4].copy_from_slice(&sz);
            }
        } else {
            let mut chunk_payloads: Vec<Vec<u8>> = vec![Vec::new(); ranges.len()];
            std::thread::scope(|s| {
                for (slot, &(start, end)) in chunk_payloads.iter_mut().zip(ranges.iter()) {
                    let wb = &word_bytes[start * 8..end * 8];
                    s.spawn(move || {
                        compress_chunk_into(wb, slot);
                    });
                }
            });
            for p in &chunk_payloads {
                push_u32(out, p.len() as u32);
            }
            for p in &chunk_payloads {
                out.extend_from_slice(p);
            }
        }
        out.extend_from_slice(tail);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let mut pos = 0usize;
        let nwords = read_u64(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("pfpc: missing word count".into()))?
            as usize;
        let nchunks = read_u32(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("pfpc: missing chunk count".into()))?
            as usize;
        let tail_len = *payload
            .get(pos)
            .ok_or_else(|| Error::Corrupt("pfpc: missing tail length".into()))?
            as usize;
        pos += 1;
        // Validate against the descriptor before any allocation sized by
        // stream-supplied counts (fuzzed payloads must not OOM).
        if nwords != desc.byte_len() / 8 || tail_len != desc.byte_len() % 8 {
            return Err(Error::Corrupt(format!(
                "pfpc: stream geometry ({nwords} words + {tail_len}) does not match descriptor"
            )));
        }
        if nchunks > nwords.max(1) {
            return Err(Error::Corrupt("pfpc: more chunks than words".into()));
        }
        let mut sizes = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            sizes.push(
                read_u32(payload, &mut pos)
                    .ok_or_else(|| Error::Corrupt("pfpc: chunk directory truncated".into()))?
                    as usize,
            );
        }
        let ranges = chunk_ranges(nwords, nchunks.max(1));
        if ranges.len() != nchunks {
            return Err(Error::Corrupt("pfpc: chunk layout mismatch".into()));
        }

        // Slice up the payload per chunk, then decode in parallel.
        let mut chunk_slices = Vec::with_capacity(nchunks);
        for &sz in &sizes {
            let s = payload
                .get(pos..pos + sz)
                .ok_or_else(|| Error::Corrupt("pfpc: chunk payload truncated".into()))?;
            chunk_slices.push(s);
            pos += sz;
        }
        let tail = payload
            .get(pos..pos + tail_len)
            .ok_or_else(|| Error::Corrupt("pfpc: tail truncated".into()))?;
        if pos + tail_len != payload.len() {
            return Err(Error::Corrupt("pfpc: trailing bytes".into()));
        }

        out.refill(desc, |bytes| {
            bytes.clear();
            bytes.resize(nwords * 8, 0);
            if nwords < PARALLEL_WORDS {
                for (slice, &(start, end)) in chunk_slices.iter().zip(ranges.iter()) {
                    decompress_chunk_into(slice, end - start, &mut bytes[start * 8..end * 8])?;
                }
            } else {
                let mut results: Vec<Result<()>> = Vec::with_capacity(nchunks);
                results.resize_with(nchunks, || Ok(()));
                std::thread::scope(|s| {
                    let mut rest: &mut [u8] = bytes;
                    for ((slot, slice), &(start, end)) in results
                        .iter_mut()
                        .zip(chunk_slices.iter())
                        .zip(ranges.iter())
                    {
                        let count = end - start;
                        let (dst, tail_rest) = rest.split_at_mut(count * 8);
                        rest = tail_rest;
                        s.spawn(move || {
                            *slot = decompress_chunk_into(slice, count, dst);
                        });
                    }
                });
                for r in results {
                    r?;
                }
            }
            bytes.extend_from_slice(tail);
            Ok(())
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Per word: two table lookups, two XORs, lz count, two table
        // updates, hash mixing — ~18 int ops; moves the word plus two
        // table entries each way.
        let n = (desc.byte_len() / 8) as u64;
        Some(OpProfile {
            int_ops: 18 * n,
            float_ops: 0,
            bytes_moved: 6 * 8 * n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip_with(data: &FloatData, threads: usize) -> usize {
        let p = Pfpc::with_threads(threads);
        let c = p.compress(data).unwrap();
        let back = p.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn smooth_data_compresses() {
        let vals: Vec<f64> = (0..20_000).map(|i| 5e5 + (i as f64) * 0.25).collect();
        let data = FloatData::from_f64(&vals, vec![20_000], Domain::Hpc).unwrap();
        let n = round_trip_with(&data, 8);
        assert!(n < 20_000 * 8, "predictable stream must compress, got {n}");
    }

    #[test]
    fn thread_counts_all_round_trip() {
        let vals: Vec<f64> = (0..5000).map(|i| ((i % 100) as f64).powi(2)).collect();
        let data = FloatData::from_f64(&vals, vec![5000], Domain::Hpc).unwrap();
        for t in [1, 2, 3, 7, 8, 16, 48] {
            round_trip_with(&data, t);
        }
    }

    #[test]
    fn cross_thread_payloads_are_compatible() {
        // Compress with 4 threads, decompress with a codec configured for 1:
        // the stream carries its own chunk directory.
        let vals: Vec<f64> = (0..3000).map(|i| (i as f64).sin()).collect();
        let data = FloatData::from_f64(&vals, vec![3000], Domain::Hpc).unwrap();
        let c4 = Pfpc::with_threads(4).compress(&data).unwrap();
        let back = Pfpc::with_threads(1).decompress(&c4, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn single_precision_via_word_reinterpretation() {
        let vals: Vec<f32> = (0..4001).map(|i| i as f32 * 1.5).collect(); // odd count => tail
        let data = FloatData::from_f32(&vals, vec![4001], Domain::Hpc).unwrap();
        round_trip_with(&data, 8);
    }

    #[test]
    fn special_values() {
        let vals = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
            1.0,
        ];
        let data = FloatData::from_f64(&vals, vec![7], Domain::Hpc).unwrap();
        round_trip_with(&data, 2);
    }

    #[test]
    fn repeating_values_hit_fcm() {
        // A strict cycle is exactly what FCM's context hash learns.
        let vals: Vec<f64> = (0..10_000).map(|i| ((i % 16) as f64) * 3.5).collect();
        let data = FloatData::from_f64(&vals, vec![10_000], Domain::Hpc).unwrap();
        let n = round_trip_with(&data, 1);
        assert!(
            n < 10_000 * 8 / 4,
            "cyclic stream should compress 4x+, got {n}"
        );
    }

    #[test]
    fn lzb_code_folding() {
        assert_eq!(lzb_to_code(0), 0);
        assert_eq!(lzb_to_code(3), 3);
        assert_eq!(lzb_to_code(4), 3); // folded
        assert_eq!(lzb_to_code(5), 4);
        assert_eq!(lzb_to_code(8), 7);
        for lzb in 0..=8u32 {
            let code = lzb_to_code(lzb);
            // The emitted byte count must cover the actual residual bytes.
            assert!(LZB_TABLE[code as usize] <= lzb);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let data = FloatData::from_f64(&[1.5], vec![1], Domain::Hpc).unwrap();
        round_trip_with(&data, 8);
        let data = FloatData::from_f32(&[2.5], vec![1], Domain::Hpc).unwrap();
        round_trip_with(&data, 8); // 4 bytes => pure tail, zero words
    }

    #[test]
    fn corruption_rejected() {
        let vals: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![500], Domain::Hpc).unwrap();
        let p = Pfpc::new();
        let c = p.compress(&data).unwrap();
        assert!(p.decompress(&c[..10], data.desc()).is_err());
        assert!(p.decompress(&c[..c.len() - 2], data.desc()).is_err());
        let mut extra = c.clone();
        extra.push(1);
        assert!(p.decompress(&extra, data.desc()).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let info = Pfpc::new().info();
        assert_eq!(info.name, "pfpc");
        assert!(info.parallel);
        assert_eq!(info.class, CodecClass::Prediction);
    }
}

//! pFPC (Burtscher & Ratanaworabhan, DCC 2009; paper §3.6).
//!
//! FPC predicts each 64-bit word with two hash-table predictors —
//! **FCM** (finite context) and **DFCM** (differential finite context) —
//! XORs the better prediction with the true value, and encodes the result
//! as a 4-bit code (1 bit predictor selector + 3 bits leading-zero-byte
//! count, with the rare count of 4 folded into 3) followed by the non-zero
//! residual bytes. pFPC parallelizes by splitting the input into chunks
//! compressed independently on `threads` OS threads, each with private
//! predictor tables.
//!
//! The stream is processed as raw u64 words regardless of the nominal
//! precision (FPC treats everything as doubles); a non-multiple-of-8 tail
//! is stored verbatim. The paper's §3.6 insight — aligning thread count
//! with data dimensionality preserves per-dimension correlation — is
//! exercised by the `ablation_pfpc` bench via [`Pfpc::with_threads`].

use crate::common::{chunk_ranges, push_u32, push_u64, read_u32, read_u64};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile, Platform,
    PrecisionSupport, Result,
};

/// Log2 of the predictor hash-table sizes.
const TABLE_LOG: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_LOG;

/// Leading-zero-byte counts representable by the 3-bit code.
/// Count 4 is folded down to 3 (the original FPC design: 4 is rare).
const LZB_TABLE: [u32; 8] = [0, 1, 2, 3, 5, 6, 7, 8];

#[inline]
fn lzb_to_code(lzb: u32) -> u32 {
    match lzb {
        0..=3 => lzb,
        4 => 3,
        5..=8 => lzb - 1,
        _ => 7,
    }
}

/// The pFPC codec.
#[derive(Debug, Clone)]
pub struct Pfpc {
    threads: usize,
}

impl Default for Pfpc {
    fn default() -> Self {
        Self::new()
    }
}

impl Pfpc {
    /// Default 8 threads, as in the original release.
    pub fn new() -> Self {
        Pfpc { threads: 8 }
    }

    pub fn with_threads(threads: usize) -> Self {
        Pfpc {
            threads: threads.max(1),
        }
    }
}

struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
}

impl Predictors {
    fn new() -> Self {
        Predictors {
            fcm: vec![0; TABLE_SIZE],
            dfcm: vec![0; TABLE_SIZE],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Current predictions (FCM, DFCM).
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (
            self.fcm[self.fcm_hash],
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Update tables and hashes with the true value.
    #[inline]
    fn update(&mut self, val: u64) {
        self.fcm[self.fcm_hash] = val;
        self.fcm_hash = ((self.fcm_hash << 6) ^ (val >> 48) as usize) & (TABLE_SIZE - 1);
        let delta = val.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash = ((self.dfcm_hash << 2) ^ (delta >> 40) as usize) & (TABLE_SIZE - 1);
        self.last = val;
    }
}

/// Compress one chunk of words with private predictor state.
fn compress_chunk(words: &[u64]) -> Vec<u8> {
    let mut p = Predictors::new();
    let mut codes = Vec::with_capacity(words.len() / 2 + 1);
    let mut residuals = Vec::with_capacity(words.len() * 4);

    let mut nibbles: Vec<(u32, u64)> = Vec::with_capacity(2);
    for &val in words {
        let (f, d) = p.predict();
        let xf = val ^ f;
        let xd = val ^ d;
        let (sel, xor) = if xf <= xd { (0u32, xf) } else { (1u32, xd) };
        let lzb = (xor.leading_zeros() / 8).min(8);
        // The code table may claim fewer leading zero bytes than actual
        // (4 -> 3); residual bytes are emitted per the *code*.
        let code = lzb_to_code(lzb);
        nibbles.push(((sel << 3) | code, xor));
        if nibbles.len() == 2 {
            codes.push(((nibbles[0].0 << 4) | nibbles[1].0) as u8);
            for &(nib, x) in &nibbles {
                let eb = 8 - LZB_TABLE[(nib & 7) as usize];
                residuals.extend_from_slice(&x.to_le_bytes()[..eb as usize]);
            }
            nibbles.clear();
        }
        p.update(val);
    }
    if let Some(&(nib, x)) = nibbles.first() {
        codes.push((nib << 4) as u8);
        let eb = 8 - LZB_TABLE[(nib & 7) as usize];
        residuals.extend_from_slice(&x.to_le_bytes()[..eb as usize]);
    }

    let mut out = Vec::with_capacity(8 + codes.len() + residuals.len());
    push_u32(&mut out, codes.len() as u32);
    push_u32(&mut out, residuals.len() as u32);
    out.extend_from_slice(&codes);
    out.extend_from_slice(&residuals);
    out
}

/// Decompress one chunk of `count` words.
fn decompress_chunk(payload: &[u8], count: usize) -> Result<Vec<u64>> {
    let mut pos = 0usize;
    let ncodes = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("pfpc: missing code count".into()))?
        as usize;
    let nres = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("pfpc: missing residual count".into()))?
        as usize;
    let codes = payload
        .get(pos..pos + ncodes)
        .ok_or_else(|| Error::Corrupt("pfpc: code bytes truncated".into()))?;
    let residuals = payload
        .get(pos + ncodes..pos + ncodes + nres)
        .ok_or_else(|| Error::Corrupt("pfpc: residual bytes truncated".into()))?;
    if ncodes != count.div_ceil(2) {
        return Err(Error::Corrupt("pfpc: code count mismatch".into()));
    }

    let mut p = Predictors::new();
    let mut out = Vec::with_capacity(count);
    let mut rpos = 0usize;
    for (k, &cb) in codes.iter().enumerate() {
        for half in 0..2 {
            let idx = 2 * k + half;
            if idx >= count {
                break;
            }
            let nib = if half == 0 {
                (cb >> 4) as u32
            } else {
                (cb & 0x0F) as u32
            };
            let sel = nib >> 3;
            let code = nib & 7;
            let eb = (8 - LZB_TABLE[code as usize]) as usize;
            // Word path: one unaligned 8-byte load + mask covers every
            // residual width; the byte-copy loop only runs for the last
            // few residuals of the chunk.
            let xor = if let Some(s) = residuals.get(rpos..rpos + 8) {
                let w = u64::from_le_bytes(s.try_into().expect("8 bytes"));
                if eb == 8 {
                    w
                } else {
                    w & ((1u64 << (8 * eb)) - 1)
                }
            } else {
                let rbytes = residuals
                    .get(rpos..rpos + eb)
                    .ok_or_else(|| Error::Corrupt("pfpc: residual stream truncated".into()))?;
                let mut le = [0u8; 8];
                le[..eb].copy_from_slice(rbytes);
                u64::from_le_bytes(le)
            };
            rpos += eb;
            let (f, d) = p.predict();
            let pred = if sel == 0 { f } else { d };
            let val = pred ^ xor;
            p.update(val);
            out.push(val);
        }
    }
    if rpos != residuals.len() {
        return Err(Error::Corrupt("pfpc: trailing residual bytes".into()));
    }
    Ok(out)
}

impl Compressor for Pfpc {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "pfpc",
            year: 2009,
            community: Community::Hpc,
            class: CodecClass::Prediction,
            platform: Platform::Cpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let bytes = data.bytes();
        let nwords = bytes.len() / 8;
        let tail = &bytes[nwords * 8..];
        let words: Vec<u64> = bytes[..nwords * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect();

        let ranges = chunk_ranges(nwords, self.threads);
        let mut chunk_payloads: Vec<Vec<u8>> = vec![Vec::new(); ranges.len()];
        std::thread::scope(|s| {
            for (slot, &(start, end)) in chunk_payloads.iter_mut().zip(ranges.iter()) {
                let words = &words[start..end];
                s.spawn(move || {
                    *slot = compress_chunk(words);
                });
            }
        });

        out.clear();
        push_u64(out, nwords as u64);
        push_u32(out, chunk_payloads.len() as u32);
        out.push(tail.len() as u8);
        for p in &chunk_payloads {
            push_u32(out, p.len() as u32);
        }
        for p in &chunk_payloads {
            out.extend_from_slice(p);
        }
        out.extend_from_slice(tail);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let mut pos = 0usize;
        let nwords = read_u64(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("pfpc: missing word count".into()))?
            as usize;
        let nchunks = read_u32(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("pfpc: missing chunk count".into()))?
            as usize;
        let tail_len = *payload
            .get(pos)
            .ok_or_else(|| Error::Corrupt("pfpc: missing tail length".into()))?
            as usize;
        pos += 1;
        // Validate against the descriptor before any allocation sized by
        // stream-supplied counts (fuzzed payloads must not OOM).
        if nwords != desc.byte_len() / 8 || tail_len != desc.byte_len() % 8 {
            return Err(Error::Corrupt(format!(
                "pfpc: stream geometry ({nwords} words + {tail_len}) does not match descriptor"
            )));
        }
        if nchunks > nwords.max(1) {
            return Err(Error::Corrupt("pfpc: more chunks than words".into()));
        }
        let mut sizes = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            sizes.push(
                read_u32(payload, &mut pos)
                    .ok_or_else(|| Error::Corrupt("pfpc: chunk directory truncated".into()))?
                    as usize,
            );
        }
        let ranges = chunk_ranges(nwords, nchunks.max(1));
        if ranges.len() != nchunks {
            return Err(Error::Corrupt("pfpc: chunk layout mismatch".into()));
        }

        // Slice up the payload per chunk, then decode in parallel.
        let mut chunk_slices = Vec::with_capacity(nchunks);
        for &sz in &sizes {
            let s = payload
                .get(pos..pos + sz)
                .ok_or_else(|| Error::Corrupt("pfpc: chunk payload truncated".into()))?;
            chunk_slices.push(s);
            pos += sz;
        }
        let tail = payload
            .get(pos..pos + tail_len)
            .ok_or_else(|| Error::Corrupt("pfpc: tail truncated".into()))?;
        if pos + tail_len != payload.len() {
            return Err(Error::Corrupt("pfpc: trailing bytes".into()));
        }

        let mut results: Vec<Result<Vec<u64>>> = Vec::with_capacity(nchunks);
        results.resize_with(nchunks, || Ok(Vec::new()));
        std::thread::scope(|s| {
            for ((slot, slice), &(start, end)) in results
                .iter_mut()
                .zip(chunk_slices.iter())
                .zip(ranges.iter())
            {
                let count = end - start;
                s.spawn(move || {
                    *slot = decompress_chunk(slice, count);
                });
            }
        });

        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            for r in results {
                for w in r? {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
            }
            bytes.extend_from_slice(tail);
            Ok(())
        })
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Per word: two table lookups, two XORs, lz count, two table
        // updates, hash mixing — ~18 int ops; moves the word plus two
        // table entries each way.
        let n = (desc.byte_len() / 8) as u64;
        Some(OpProfile {
            int_ops: 18 * n,
            float_ops: 0,
            bytes_moved: 6 * 8 * n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip_with(data: &FloatData, threads: usize) -> usize {
        let p = Pfpc::with_threads(threads);
        let c = p.compress(data).unwrap();
        let back = p.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn smooth_data_compresses() {
        let vals: Vec<f64> = (0..20_000).map(|i| 5e5 + (i as f64) * 0.25).collect();
        let data = FloatData::from_f64(&vals, vec![20_000], Domain::Hpc).unwrap();
        let n = round_trip_with(&data, 8);
        assert!(n < 20_000 * 8, "predictable stream must compress, got {n}");
    }

    #[test]
    fn thread_counts_all_round_trip() {
        let vals: Vec<f64> = (0..5000).map(|i| ((i % 100) as f64).powi(2)).collect();
        let data = FloatData::from_f64(&vals, vec![5000], Domain::Hpc).unwrap();
        for t in [1, 2, 3, 7, 8, 16, 48] {
            round_trip_with(&data, t);
        }
    }

    #[test]
    fn cross_thread_payloads_are_compatible() {
        // Compress with 4 threads, decompress with a codec configured for 1:
        // the stream carries its own chunk directory.
        let vals: Vec<f64> = (0..3000).map(|i| (i as f64).sin()).collect();
        let data = FloatData::from_f64(&vals, vec![3000], Domain::Hpc).unwrap();
        let c4 = Pfpc::with_threads(4).compress(&data).unwrap();
        let back = Pfpc::with_threads(1).decompress(&c4, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn single_precision_via_word_reinterpretation() {
        let vals: Vec<f32> = (0..4001).map(|i| i as f32 * 1.5).collect(); // odd count => tail
        let data = FloatData::from_f32(&vals, vec![4001], Domain::Hpc).unwrap();
        round_trip_with(&data, 8);
    }

    #[test]
    fn special_values() {
        let vals = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
            1.0,
        ];
        let data = FloatData::from_f64(&vals, vec![7], Domain::Hpc).unwrap();
        round_trip_with(&data, 2);
    }

    #[test]
    fn repeating_values_hit_fcm() {
        // A strict cycle is exactly what FCM's context hash learns.
        let vals: Vec<f64> = (0..10_000).map(|i| ((i % 16) as f64) * 3.5).collect();
        let data = FloatData::from_f64(&vals, vec![10_000], Domain::Hpc).unwrap();
        let n = round_trip_with(&data, 1);
        assert!(
            n < 10_000 * 8 / 4,
            "cyclic stream should compress 4x+, got {n}"
        );
    }

    #[test]
    fn lzb_code_folding() {
        assert_eq!(lzb_to_code(0), 0);
        assert_eq!(lzb_to_code(3), 3);
        assert_eq!(lzb_to_code(4), 3); // folded
        assert_eq!(lzb_to_code(5), 4);
        assert_eq!(lzb_to_code(8), 7);
        for lzb in 0..=8u32 {
            let code = lzb_to_code(lzb);
            // The emitted byte count must cover the actual residual bytes.
            assert!(LZB_TABLE[code as usize] <= lzb);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let data = FloatData::from_f64(&[1.5], vec![1], Domain::Hpc).unwrap();
        round_trip_with(&data, 8);
        let data = FloatData::from_f32(&[2.5], vec![1], Domain::Hpc).unwrap();
        round_trip_with(&data, 8); // 4 bytes => pure tail, zero words
    }

    #[test]
    fn corruption_rejected() {
        let vals: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![500], Domain::Hpc).unwrap();
        let p = Pfpc::new();
        let c = p.compress(&data).unwrap();
        assert!(p.decompress(&c[..10], data.desc()).is_err());
        assert!(p.decompress(&c[..c.len() - 2], data.desc()).is_err());
        let mut extra = c.clone();
        extra.push(1);
        assert!(p.decompress(&extra, data.desc()).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let info = Pfpc::new().info();
        assert_eq!(info.name, "pfpc");
        assert!(info.parallel);
        assert_eq!(info.class, CodecClass::Prediction);
    }
}

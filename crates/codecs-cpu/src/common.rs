//! Shared helpers for the CPU codec implementations.

use fcbench_core::{DataDesc, Precision};

/// Split `total` elements into per-thread chunk ranges of roughly equal size.
/// Returns at most `threads` non-empty `(start, end)` ranges.
pub fn chunk_ranges(total: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1);
    if total == 0 {
        return Vec::new();
    }
    let per = total.div_ceil(threads);
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    while start < total {
        let end = (start + per).min(total);
        out.push((start, end));
        start = end;
    }
    out
}

/// Effective dimensionality for codecs that cap at 3-D: higher-dimensional
/// extents collapse extra leading axes into the slowest one (matching how
/// fpzip/ndzip are driven with at most 3 dimensions in the paper).
pub fn effective_dims(desc: &DataDesc) -> Vec<usize> {
    let dims = &desc.dims;
    if dims.len() <= 3 {
        return dims.clone();
    }
    let lead: usize = dims[..dims.len() - 2].iter().product();
    vec![lead, dims[dims.len() - 2], dims[dims.len() - 1]]
}

/// Byte length of one element.
pub fn elem_bytes(p: Precision) -> usize {
    p.bytes()
}

/// Iterate little-endian `u64` bit-pattern words over a payload without
/// materialising a vector — the allocation-free feed for `compress_into`
/// hot paths. The caller guarantees `bytes.len()` is a multiple of 8
/// (`FloatData` enforces this for double-precision payloads).
pub fn u64_words(bytes: &[u8]) -> impl ExactSizeIterator<Item = u64> + '_ {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
}

/// Iterate little-endian `u32` bit-pattern words over a payload
/// (single-precision sibling of [`u64_words`]).
pub fn u32_words(bytes: &[u8]) -> impl ExactSizeIterator<Item = u32> + '_ {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
}

/// Write a `u32` length prefix.
pub fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `pos`, advancing it.
pub fn read_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let s = bytes.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Write a `u64` length prefix.
pub fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u64` at `pos`, advancing it.
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let s = bytes.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    #[test]
    fn chunking_covers_everything_without_overlap() {
        for total in [0usize, 1, 7, 100, 4096, 4097] {
            for threads in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(total, threads);
                let mut covered = 0;
                let mut prev_end = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, prev_end, "ranges must be contiguous");
                    assert!(e > s, "ranges must be non-empty");
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, total);
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn chunking_is_balanced() {
        let ranges = chunk_ranges(100, 3);
        let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
        assert_eq!(sizes, vec![34, 34, 32]);
    }

    #[test]
    fn effective_dims_collapse() {
        let d = DataDesc::new(Precision::Single, vec![2, 3, 4, 5], Domain::Hpc).unwrap();
        assert_eq!(effective_dims(&d), vec![6, 4, 5]);
        let d3 = DataDesc::new(Precision::Single, vec![3, 4, 5], Domain::Hpc).unwrap();
        assert_eq!(effective_dims(&d3), vec![3, 4, 5]);
        let d1 = DataDesc::new(Precision::Single, vec![60], Domain::Hpc).unwrap();
        assert_eq!(effective_dims(&d1), vec![60]);
    }

    #[test]
    fn int_io_round_trip() {
        let mut buf = Vec::new();
        push_u32(&mut buf, 0xDEAD_BEEF);
        push_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), Some(0xDEAD_BEEF));
        assert_eq!(read_u64(&buf, &mut pos), Some(0x0123_4567_89AB_CDEF));
        assert_eq!(pos, 12);
        assert_eq!(read_u32(&buf, &mut pos), None);
    }
}

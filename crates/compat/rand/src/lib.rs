//! Offline shim for the subset of `rand` 0.9 this workspace uses.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This crate provides `rngs::SmallRng` (xoshiro256++ seeded via
//! SplitMix64 — the same generator family the real `SmallRng` uses on 64-bit
//! targets), the `SeedableRng::seed_from_u64` constructor, and
//! `Rng::random_range` / `Rng::random` over the integer and float ranges the
//! dataset generators and dzip reservoir need. Determinism per seed is the
//! only property callers rely on.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Range types accepted by `Rng::random_range`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                // Modulo over the span: a negligible bias is acceptable for
                // synthetic data generation; determinism is what matters.
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                lo + $unit(rng) * (hi - lo)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                lo + $unit(rng) * (hi - lo)
            }
        }
    )*};
}

/// Uniform f64 in [0, 1) using the top 53 bits.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform f32 in [0, 1) using the top 24 bits.
fn unit_f32(rng: &mut dyn RngCore) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_uniform_float!(f64, unit_f64; f32, unit_f32);

/// Types producible by `Rng::random` from raw bits.
pub trait StandardUniform: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty => $e:expr),*) => {$(
        impl StandardUniform for $t {
            fn from_rng(rng: &mut dyn RngCore) -> Self {
                let f: fn(&mut dyn RngCore) -> $t = $e;
                f(rng)
            }
        }
    )*};
}

impl_standard!(
    u8 => |r| r.next_u64() as u8,
    u16 => |r| r.next_u64() as u16,
    u32 => |r| r.next_u32(),
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    bool => |r| r.next_u64() & 1 == 1,
    f32 => unit_f32,
    f64 => unit_f64
);

pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state, as the
            // xoshiro reference implementation recommends.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            let n: usize = rng.random_range(8..64);
            assert!((8..64).contains(&n));
            let k: u32 = rng.random_range(1..=50);
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}

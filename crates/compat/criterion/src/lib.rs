//! Offline mini benchmark harness exposing the subset of the `criterion` API
//! this workspace uses.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate provides `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! median-of-samples wall-clock measurement printed as
//! `group/function/param  time  throughput` — no statistics, plots, or
//! baseline comparison. Swap the workspace dependency back to crates.io for
//! the real analysis pipeline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: a function name plus an optional parameter, printed
/// as `function/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Runs the measured closure and records per-iteration wall time.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let start = Instant::now();
        loop {
            black_box(f());
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measure: one timed call per sample, stopping early if the
        // measurement budget runs out.
        let budget = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if budget.elapsed() >= self.measurement {
                break;
            }
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, bencher.median());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, median: Duration) {
        let per_iter = median.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / per_iter / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>12.3} µs/iter{rate}",
            format!("{}/{}", self.name, id.render()),
            per_iter * 1e6,
        );
    }
}

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// No-op: CLI argument handling is not implemented in the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| ran = ran.wrapping_add(1))
        });
        group.bench_with_input(BenchmarkId::new("with_input", 2), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran > 0);
    }
}

//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no network access, so the real `proptest` cannot
//! be fetched. This crate implements the same surface — the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, `any::<T>()`, range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::ANY`, regex-literal
//! string strategies, and `ProptestConfig::with_cases` — on a deterministic
//! xoshiro RNG. There is no shrinking: a failing case panics with the usual
//! assert message, which is enough for CI. Swap the workspace dependency back
//! to crates.io for full shrinking support.

pub mod test_runner {
    /// Drop-in for `proptest::test_runner::Config` (aliased `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        /// Like real proptest's `with_cases`, except the `PROPTEST_CASES`
        /// environment variable overrides even explicit counts — the shim's
        /// stress-test knob (`PROPTEST_CASES=5000 cargo test`).
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: env_cases().unwrap_or(256),
            }
        }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// Deterministic xoshiro256++ used to drive all strategies. Each test
    /// function derives its seed from its own name so cases differ between
    /// tests but are stable run-to-run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic(salt: &str) -> Self {
            // FNV-1a over the salt, then SplitMix64 to fill the state.
            // `PROPTEST_RNG_SEED` perturbs the stream so reruns can explore
            // different cases while staying reproducible.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in salt.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_RNG_SEED") {
                for b in seed.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
            let mut x = h;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in [0, n). Panics if n == 0.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample empty range");
            self.next_u64() % n
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Value-generation strategy. Unlike real proptest there is no value
    /// tree / shrinking; `sample` draws one case directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// `S.prop_map(f)` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Constant strategy, for parity with `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Numbers samplable from range strategies.
    pub trait RangeSample: PartialOrd + Copy {
        fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
        fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_range_sample_int {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    let span = (hi as i128 - lo as i128) as u128;
                    assert!(span > 0, "cannot sample empty range");
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + r) as $t
                }
                fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + r) as $t
                }
            }
        )*};
    }

    impl_range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_sample_float {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
                fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_range_sample_float!(f32, f64);

    impl<T: RangeSample> Strategy for Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: RangeSample> Strategy for RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    );

    /// String strategies from regex literals, e.g. `"[a-z][a-z0-9-]{0,30}"`.
    /// Supports literal characters, `[...]` classes with ranges, and the
    /// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` — the subset the workspace's
    /// tests use.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_regex(self, rng)
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"));
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            for c in lo..=hi {
                                set.push(char::from_u32(c).expect("valid class range"));
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(set)
                }
                '\\' => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier lower bound"),
                            hi.trim().parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pattern) {
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty class in regex strategy {pattern:?}");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Any bit pattern, like proptest's f64 ANY with all classes on.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bound for collection strategies (inclusive lo, exclusive hi).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolAny = BoolAny;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop`: module paths for strategies.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// The test-definition macro. Each `#[test] fn name(pat in strategy, ...)`
/// becomes a plain `#[test]` that samples every strategy `cases` times and
/// runs the body. Failures panic immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $( let $arg = $crate::strategy::Strategy::sample(&{ $strat }, &mut rng); )+
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest {}: failed at case {}/{} (deterministic seed; no shrinking)",
                            stringify!($name), case + 1, config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = crate::test_runner::TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = crate::string::sample_regex("[a-z][a-z0-9-]{0,30}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 31);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u32..10, 5u64..6),
            s in (1usize..4).prop_map(|n| n * 2),
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(s == 2 || s == 4 || s == 6);
        }
    }
}

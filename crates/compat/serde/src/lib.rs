//! Offline shim for `serde`'s derive macros.
//!
//! The build environment has no network access, so the real `serde` cannot be
//! fetched. The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations (nothing serializes yet), so both derives
//! expand to nothing. Point the workspace dependency back at crates.io to get
//! real serialization.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no network access, so external crates cannot be
//! fetched. This crate re-implements the tiny subset of `parking_lot` the
//! codebase relies on (`Mutex` with a non-poisoning `lock()`) on top of
//! `std::sync`. Swap it for the real crate by pointing the workspace
//! dependency back at crates.io.

use std::sync::TryLockError;

/// A mutex whose `lock()` never returns a poison error: a poisoned std lock
/// is recovered by taking the inner guard, matching `parking_lot` semantics
/// (which has no poisoning at all).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

#![forbid(unsafe_code)]
//! Zero-allocation metrics spine for FCBench-rs.
//!
//! The repo's whole contribution is measurement, so the measurement layer
//! itself must not distort what it measures. Everything here follows one
//! discipline, the same one the codec hot paths follow:
//!
//! * **Registration is the cold path.** [`Registry::counter`],
//!   [`Registry::gauge`], and [`Registry::histogram`] take a mutex, may
//!   allocate, and hand back a pre-resolved handle.
//! * **Recording is the hot path.** A handle is an `Arc` around plain
//!   `AtomicU64` state: [`Counter::inc`] and [`Gauge::set`] are a single
//!   relaxed atomic op; [`Histogram::record`] is three (bucket, sum, max).
//!   No locks, no allocation — proven by the counting-allocator test in
//!   `crates/bench/tests/alloc_into.rs`.
//! * **Snapshots reuse buffers.** [`Registry::snapshot_into`] overwrites a
//!   caller-held [`Snapshot`] in place; after the first (cold) call it
//!   allocates nothing, so a stats endpoint polled in a loop costs only
//!   atomic loads.
//!
//! Latency is captured by log-linear histograms (HdrHistogram-style): a
//! fixed `Box<[AtomicU64]>` of [`NUM_BUCKETS`] buckets, exact below
//! [`SUBS_PER_OCTAVE`], and bounded to ~3% relative error above it (one
//! octave per power of two, [`SUBS_PER_OCTAVE`] linear sub-buckets per
//! octave). Values above [`MAX_TRACKABLE`] saturate into the top bucket —
//! nothing in this crate panics. Snapshots are mergeable bucket-wise, so
//! per-thread or per-server histograms aggregate without losing quantiles.
//!
//! The [`span!`] macro and [`Histogram::start_span`] give RAII timers: the
//! guard records elapsed nanoseconds into its histogram on drop, on every
//! exit path.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Number of linear sub-buckets per power-of-two octave (and the width of
/// the exact range: values below this are recorded with zero error).
pub const SUBS_PER_OCTAVE: usize = 32;
const SUB_BITS: usize = 5;
/// Octaves above the exact range; the last covers values up to
/// [`MAX_TRACKABLE`].
const OCTAVES: usize = 40;
/// Total bucket count of every histogram: `(OCTAVES + 1) * SUBS_PER_OCTAVE`.
pub const NUM_BUCKETS: usize = (OCTAVES + 1) * SUBS_PER_OCTAVE;
/// Largest recordable value (~9.7 hours in nanoseconds). Larger samples
/// saturate into the top bucket instead of panicking.
pub const MAX_TRACKABLE: u64 = (1u64 << (SUB_BITS + OCTAVES)) - 1;

/// Bucket index for a sample value (saturating at the top bucket).
///
/// Values below [`SUBS_PER_OCTAVE`] map one-to-one; above that, the octave
/// is the position of the most significant bit and the sub-bucket is the
/// next `SUB_BITS` bits, so the representative value is always within
/// `value / SUBS_PER_OCTAVE` of the sample.
pub fn bucket_index(value: u64) -> usize {
    let v = value.min(MAX_TRACKABLE);
    if v < SUBS_PER_OCTAVE as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let octave = msb - SUB_BITS + 1;
    let sub = ((v >> (octave - 1)) as usize) - SUBS_PER_OCTAVE;
    octave * SUBS_PER_OCTAVE + sub
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lower(index: usize) -> u64 {
    let i = index.min(NUM_BUCKETS - 1);
    let octave = i / SUBS_PER_OCTAVE;
    let sub = (i % SUBS_PER_OCTAVE) as u64;
    if octave == 0 {
        sub
    } else {
        (SUBS_PER_OCTAVE as u64 + sub) << (octave - 1)
    }
}

/// Width of a bucket (1 in the exact range, doubling per octave).
pub fn bucket_width(index: usize) -> u64 {
    let octave = index.min(NUM_BUCKETS - 1) / SUBS_PER_OCTAVE;
    if octave == 0 {
        1
    } else {
        1u64 << (octave - 1)
    }
}

/// Representative (midpoint) value reported for samples in a bucket.
/// `bucket_value(bucket_index(v))` differs from `v` by at most
/// `v / SUBS_PER_OCTAVE` for any `v <= MAX_TRACKABLE`.
pub fn bucket_value(index: usize) -> u64 {
    bucket_lower(index) + bucket_width(index) / 2
}

/// Lock a mutex, treating poisoning as harmless (every guarded region here
/// is a plain read-modify-write of registration tables).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Saturating nanosecond count of a duration.
fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Pre-resolved handle to a monotonically increasing counter. Cloning is an
/// `Arc` bump; recording is one relaxed `fetch_add`.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (records are still counted;
    /// useful as a disabled default).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Pre-resolved handle to a gauge (a value that goes up and down, e.g.
/// occupied pool slots or live connections).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Saturating decrement: a stray double-drop clamps at zero instead of
    /// wrapping to `u64::MAX` and poisoning every later reading.
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Increment now, decrement when the guard drops — the leak-proof way
    /// to track "currently active" quantities across early returns.
    pub fn inc_scoped(&self) -> GaugeGuard {
        self.add(1);
        GaugeGuard {
            gauge: self.clone(),
        }
    }
}

/// RAII guard from [`Gauge::inc_scoped`]; decrements on drop.
pub struct GaugeGuard {
    gauge: Gauge,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.sub(1);
    }
}

/// Tracks one owner's contribution to a shared gauge (e.g. a frame
/// stream's in-flight blocks on a pool shared by many streams). The owner
/// calls [`InflightGauge::sync`] with its current count after every
/// mutation; on drop, whatever is still held is released — so an owner
/// abandoned mid-stream (error paths, dropped connections) can never leak
/// a phantom reading into the gauge.
#[derive(Default)]
pub struct InflightGauge {
    gauge: Option<Gauge>,
    held: u64,
}

impl InflightGauge {
    /// A tracker feeding `gauge`.
    pub fn attached(gauge: Gauge) -> Self {
        InflightGauge {
            gauge: Some(gauge),
            held: 0,
        }
    }

    /// A no-op tracker (no telemetry configured); `sync` does nothing.
    pub fn detached() -> Self {
        InflightGauge::default()
    }

    /// Reconcile the shared gauge with this owner's current count.
    pub fn sync(&mut self, now: usize) {
        let Some(gauge) = self.gauge.as_ref() else {
            return;
        };
        let now = now as u64;
        if now > self.held {
            gauge.add(now - self.held);
        } else {
            gauge.sub(self.held - now);
        }
        self.held = now;
    }
}

impl Drop for InflightGauge {
    fn drop(&mut self) {
        if let Some(gauge) = self.gauge.as_ref() {
            gauge.sub(self.held);
        }
    }
}

struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let v = value.min(MAX_TRACKABLE);
        let i = bucket_index(v);
        if let Some(b) = self.buckets.get(i) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot_into(&self, out: &mut HistogramSnapshot) {
        out.buckets.resize(NUM_BUCKETS, 0);
        let mut count = 0u64;
        for (slot, b) in out.buckets.iter_mut().zip(self.buckets.iter()) {
            let v = b.load(Ordering::Relaxed);
            *slot = v;
            count = count.saturating_add(v);
        }
        out.count = count;
        out.sum = self.sum.load(Ordering::Relaxed);
        out.max = self.max.load(Ordering::Relaxed);
    }
}

/// Pre-resolved handle to a log-linear latency histogram. Recording is
/// three relaxed atomic ops (bucket, sum, max); cloning is an `Arc` bump.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    pub fn detached() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }

    /// Record one sample (saturating at [`MAX_TRACKABLE`], never panics).
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(nanos(d));
    }

    /// Start an RAII timer; elapsed nanoseconds are recorded when the
    /// returned [`Span`] drops, on every exit path.
    pub fn start_span(&self) -> Span {
        Span {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Point-in-time copy (allocates; prefer [`Histogram::snapshot_into`]
    /// on hot paths).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        self.snapshot_into(&mut s);
        s
    }

    /// Overwrite `out` in place; allocation-free once `out` has been used
    /// for any histogram snapshot before.
    pub fn snapshot_into(&self, out: &mut HistogramSnapshot) {
        self.0.snapshot_into(out);
    }
}

/// RAII timer feeding a [`Histogram`]; created by [`Histogram::start_span`]
/// or the [`span!`] macro.
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// Elapsed time so far (the span keeps running).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(nanos(self.start.elapsed()));
    }
}

/// `span!(registry, "pool.exec")` — resolve (or create) the named histogram
/// in `registry` and start an RAII timer on it. Resolution takes the
/// registry lock, so hot paths should pre-resolve with
/// [`Registry::histogram`] and call [`Histogram::start_span`] directly.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.histogram($name).start_span()
    };
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Mergeable point-in-time copy of a histogram: full bucket array plus
/// count/sum/max. Quantiles are computed from the buckets, so merging two
/// snapshots bucket-wise preserves them exactly (relative to recording the
/// union directly).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (after saturation clamping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (after saturation clamping).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q` in `[0, 1]`: the representative value of the
    /// bucket containing the ceil(q * count)-th sample, clamped to the
    /// observed max. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank_f = (q.clamp(0.0, 1.0) * self.count as f64).ceil();
        let rank = if rank_f < 1.0 {
            1
        } else if rank_f >= self.count as f64 {
            self.count
        } else {
            rank_f as u64
        };
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*c);
            if seen >= rank {
                let rep = bucket_value(i);
                return if self.max > 0 { rep.min(self.max) } else { rep };
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another snapshot into this one bucket-wise. Quantiles of the
    /// result match recording both sample sets into one histogram.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(index, count)` pairs — the sparse form the
    /// `STATS_V2` wire encoding carries.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .map(|(i, c)| (i, *c))
    }

    /// Number of non-empty buckets (the sparse encoding's row count).
    pub fn nonzero_len(&self) -> usize {
        self.buckets.iter().filter(|c| **c != 0).count()
    }

    /// Rebuild a snapshot from its sparse wire form. Returns `None` if a
    /// bucket index is out of range ([`NUM_BUCKETS`]) — corrupt wire data,
    /// never a panic.
    pub fn from_sparse(pairs: &[(u16, u64)], sum: u64, max: u64) -> Option<Self> {
        let mut s = HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum,
            max,
        };
        for &(i, c) in pairs {
            let slot = s.buckets.get_mut(usize::from(i))?;
            *slot = slot.saturating_add(c);
            s.count = s.count.saturating_add(c);
        }
        Some(s)
    }
}

/// Reusable point-in-time copy of a whole [`Registry`]. Names are shared
/// `Arc<str>`s, and [`Registry::snapshot_into`] overwrites rows in place,
/// so refreshing a warm snapshot allocates nothing.
#[derive(Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(Arc<str>, u64)>,
    pub gauges: Vec<(Arc<str>, u64)>,
    pub histograms: Vec<(Arc<str>, HistogramSnapshot)>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, h)| h)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Tables {
    counters: Vec<(Arc<str>, Counter)>,
    gauges: Vec<(Arc<str>, Gauge)>,
    histograms: Vec<(Arc<str>, Histogram)>,
}

/// Named metric registry. Registration (get-or-create by name) takes a
/// mutex and is the cold path; the returned handles record lock-free.
/// Registration order is stable and append-only, which is what lets
/// [`Registry::snapshot_into`] refresh a warm [`Snapshot`] in place.
#[derive(Default)]
pub struct Registry {
    tables: Mutex<Tables>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut t = lock(&self.tables);
        if let Some((_, c)) = t.counters.iter().find(|(n, _)| &**n == name) {
            return c.clone();
        }
        let c = Counter::detached();
        t.counters.push((Arc::from(name), c.clone()));
        c
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut t = lock(&self.tables);
        if let Some((_, g)) = t.gauges.iter().find(|(n, _)| &**n == name) {
            return g.clone();
        }
        let g = Gauge::detached();
        t.gauges.push((Arc::from(name), g.clone()));
        g
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut t = lock(&self.tables);
        if let Some((_, h)) = t.histograms.iter().find(|(n, _)| &**n == name) {
            return h.clone();
        }
        let h = Histogram::detached();
        t.histograms.push((Arc::from(name), h.clone()));
        h
    }

    /// A lock-free label-to-histogram cache under `prefix` (e.g. per-codec
    /// job timing: `pool.exec.codec` + `"gorilla"` →
    /// `pool.exec.codec.gorilla`).
    pub fn histogram_family(self: &Arc<Self>, prefix: &str) -> HistogramFamily {
        HistogramFamily {
            registry: Arc::clone(self),
            prefix: prefix.into(),
            slots: (0..FAMILY_SLOTS).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Point-in-time copy of everything (allocates; prefer
    /// [`Registry::snapshot_into`] on hot paths).
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        self.snapshot_into(&mut s);
        s
    }

    /// Overwrite `out` in place. Counter/gauge rows are cleared and
    /// re-pushed (capacity retained, names are `Arc` clones); histogram
    /// rows are refreshed in place by registration index. After the first
    /// call with a given `out`, this allocates nothing until new metrics
    /// are registered.
    pub fn snapshot_into(&self, out: &mut Snapshot) {
        let t = lock(&self.tables);
        out.counters.clear();
        for (name, c) in &t.counters {
            out.counters.push((Arc::clone(name), c.get()));
        }
        out.gauges.clear();
        for (name, g) in &t.gauges {
            out.gauges.push((Arc::clone(name), g.get()));
        }
        for (i, (name, h)) in t.histograms.iter().enumerate() {
            if let Some(row) = out.histograms.get_mut(i) {
                row.0 = Arc::clone(name);
                h.snapshot_into(&mut row.1);
            } else {
                let mut s = HistogramSnapshot::default();
                h.snapshot_into(&mut s);
                out.histograms.push((Arc::clone(name), s));
            }
        }
        out.histograms.truncate(t.histograms.len());
    }

    /// Text exposition: one line per metric, stable order, greppable.
    ///
    /// ```text
    /// counter serve.requests.ok 42
    /// gauge pool.slots.occupied 3
    /// histogram serve.request.compress count 18 p50_ns 10432 p90_ns 20480 p99_ns 31488 p999_ns 31488 max_ns 30912 mean_ns 12110
    /// ```
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count {} p50_ns {} p90_ns {} p99_ns {} p999_ns {} max_ns {} mean_ns {}",
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
                h.max(),
                h.mean(),
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Families: lock-free dynamic-label handle caches
// ---------------------------------------------------------------------------

const FAMILY_SLOTS: usize = 64;

fn fnv(label: &str) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h as usize
}

/// Open-addressed cache of per-label histograms under one prefix. The first
/// lookup of a label registers `prefix.label` (allocates, registry lock);
/// every later lookup is a hash + probe over `OnceLock` slots — no locks,
/// no allocation, safe code only. Returns `None` once all
/// [`FAMILY_SLOTS`] slots hold other labels (the sample is dropped, never
/// an error — metric cardinality is bounded by construction).
/// One lazily-registered slot: the label it holds and its histogram.
type FamilySlot = OnceLock<(Box<str>, Histogram)>;

pub struct HistogramFamily {
    registry: Arc<Registry>,
    prefix: Box<str>,
    slots: Box<[FamilySlot]>,
}

impl HistogramFamily {
    pub fn get(&self, label: &str) -> Option<&Histogram> {
        let mask = FAMILY_SLOTS - 1;
        let mut i = fnv(label) & mask;
        for _ in 0..FAMILY_SLOTS {
            let slot = self.slots.get(i)?;
            let (name, hist) = slot.get_or_init(|| {
                let full = format!("{}.{}", self.prefix, label);
                (label.into(), self.registry.histogram(&full))
            });
            if &**name == label {
                return Some(hist);
            }
            i = (i + 1) & mask;
        }
        None
    }

    /// Time a closure against the label's histogram (records even if the
    /// family is full — into a detached histogram — so behaviour does not
    /// change with cardinality).
    pub fn time<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        if let Some(h) = self.get(label) {
            h.record(nanos(start.elapsed()));
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same underlying cell.
        assert_eq!(reg.counter("a.b").get(), 5);

        let g = reg.gauge("g");
        g.set(10);
        g.add(2);
        g.sub(5);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge decrements saturate, never wrap");
        {
            let _guard = g.inc_scoped();
            assert_eq!(g.get(), 1);
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn inflight_gauge_syncs_and_releases_on_drop() {
        let reg = Registry::new();
        let g = reg.gauge("inflight");
        let mut a = InflightGauge::attached(g.clone());
        let mut b = InflightGauge::attached(g.clone());
        a.sync(3);
        b.sync(2);
        assert_eq!(g.get(), 5);
        a.sync(1);
        assert_eq!(g.get(), 3);
        drop(a);
        assert_eq!(g.get(), 2, "dropping an owner releases only its share");
        drop(b);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_exact_below_linear_range() {
        let h = Histogram::detached();
        for v in 0..SUBS_PER_OCTAVE as u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), SUBS_PER_OCTAVE as u64);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.max(), SUBS_PER_OCTAVE as u64 - 1);
        // Median of 0..32 recorded exactly.
        assert_eq!(s.p50(), 15);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let h = Histogram::detached();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.p50() as f64;
        let p99 = s.p99() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.05, "p50 = {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.05, "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 10_000);
    }

    #[test]
    fn saturation_not_panic() {
        let h = Histogram::detached();
        h.record(u64::MAX);
        h.record(MAX_TRACKABLE + 1);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), MAX_TRACKABLE);
        assert!(s.p50() <= MAX_TRACKABLE);
    }

    #[test]
    fn merge_matches_union() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        let u = Histogram::detached();
        for v in [1u64, 50, 900, 30_000] {
            a.record(v);
            u.record(v);
        }
        for v in [7u64, 120, 1_000_000] {
            b.record(v);
            u.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        assert_eq!(merged, u.snapshot());
    }

    #[test]
    fn sparse_roundtrip_rejects_bad_index() {
        let h = Histogram::detached();
        for v in [3u64, 3, 500, 80_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let pairs: Vec<(u16, u64)> = s.nonzero_buckets().map(|(i, c)| (i as u16, c)).collect();
        let back = HistogramSnapshot::from_sparse(&pairs, s.sum(), s.max());
        assert_eq!(back.as_ref(), Some(&s));
        assert!(HistogramSnapshot::from_sparse(&[(u16::MAX, 1)], 0, 0).is_none());
    }

    #[test]
    fn warm_snapshot_refreshes_in_place() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.inc();
        h.record(40);
        let mut snap = Snapshot::default();
        reg.snapshot_into(&mut snap);
        assert_eq!(snap.counter("c"), Some(1));
        c.add(9);
        h.record(41);
        reg.snapshot_into(&mut snap);
        assert_eq!(snap.counter("c"), Some(10));
        assert_eq!(snap.histogram("h").map(|h| h.count()), Some(2));
    }

    #[test]
    fn span_records_on_drop() {
        let reg = Registry::new();
        {
            let _span = span!(reg, "work");
            std::thread::sleep(Duration::from_millis(1));
        }
        let s = reg.histogram("work").snapshot();
        assert_eq!(s.count(), 1);
        assert!(s.max() >= 1_000_000, "slept >= 1ms, max = {}", s.max());
    }

    #[test]
    fn family_resolves_and_bounds_cardinality() {
        let reg = Arc::new(Registry::new());
        let fam = reg.histogram_family("pool.exec.codec");
        fam.time("gorilla", || {});
        fam.time("gorilla", || {});
        fam.time("chimp128", || {});
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram("pool.exec.codec.gorilla").map(|h| h.count()),
            Some(2)
        );
        assert_eq!(
            snap.histogram("pool.exec.codec.chimp128")
                .map(|h| h.count()),
            Some(1)
        );
        // Overflowing the slot table degrades to dropping samples, not
        // erroring or growing without bound.
        for i in 0..(FAMILY_SLOTS * 2) {
            let label = format!("label-{i}");
            fam.time(&label, || {});
        }
        assert!(reg.snapshot().histograms.len() <= FAMILY_SLOTS + 2);
    }

    #[test]
    fn exposition_lines_are_greppable() {
        let reg = Registry::new();
        reg.counter("serve.requests.ok").add(3);
        reg.gauge("serve.connections.active").set(2);
        reg.histogram("serve.request.compress").record(1500);
        let text = reg.render_text();
        assert!(text.contains("counter serve.requests.ok 3\n"));
        assert!(text.contains("gauge serve.connections.active 2\n"));
        assert!(text.contains("histogram serve.request.compress count 1 "));
    }
}

//! Property tests for the log-linear histogram core: bucket round-trips
//! stay within the advertised error bound, merged snapshots are
//! indistinguishable from recording the union, and hostile values saturate
//! instead of panicking.

use fcbench_telemetry::{
    bucket_index, bucket_lower, bucket_value, bucket_width, Histogram, HistogramSnapshot,
    MAX_TRACKABLE, NUM_BUCKETS, SUBS_PER_OCTAVE,
};
use proptest::prelude::*;

/// Samples spanning every octave: uniform small values plus shifted ones so
/// the high buckets are exercised as often as the exact range.
fn arb_sample() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0usize..45).prop_map(|(v, shift)| (v % 4096) << shift.min(44))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bucket_roundtrip_error_is_bounded(raw in arb_sample()) {
        let v = raw.min(MAX_TRACKABLE);
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        // The value falls inside its bucket's [lower, lower + width) range.
        let lo = bucket_lower(i);
        let width = bucket_width(i);
        prop_assert!(lo <= v && v < lo + width, "v={v} i={i} lo={lo} width={width}");
        // The representative is within v / SUBS_PER_OCTAVE of the sample
        // (exact below SUBS_PER_OCTAVE).
        let rep = bucket_value(i);
        prop_assert!(
            rep.abs_diff(v).saturating_mul(SUBS_PER_OCTAVE as u64) <= v,
            "v={v} rep={rep}"
        );
        if v < SUBS_PER_OCTAVE as u64 {
            prop_assert_eq!(rep, v);
        }
    }

    #[test]
    fn merged_quantiles_match_recording_the_union(
        a in prop::collection::vec(arb_sample(), 0..200),
        b in prop::collection::vec(arb_sample(), 0..200),
    ) {
        let ha = Histogram::detached();
        let hb = Histogram::detached();
        let hu = Histogram::detached();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge_from(&hb.snapshot());
        let union = hu.snapshot();
        prop_assert_eq!(&merged, &union);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q), union.quantile(q), "q={}", q);
        }
    }

    #[test]
    fn hostile_values_saturate_instead_of_panicking(
        extremes in prop::collection::vec(
            (0usize..4, any::<u64>()).prop_map(|(pick, v)| match pick {
                0 => u64::MAX,
                1 => MAX_TRACKABLE,
                2 => MAX_TRACKABLE + 1,
                _ => v,
            }),
            1..50,
        ),
    ) {
        let h = Histogram::detached();
        for &v in &extremes {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), extremes.len() as u64);
        prop_assert!(s.max() <= MAX_TRACKABLE);
        for q in [0.5, 0.99, 0.999] {
            prop_assert!(s.quantile(q) <= MAX_TRACKABLE);
        }
    }

    #[test]
    fn sparse_wire_form_roundtrips(samples in prop::collection::vec(arb_sample(), 0..200)) {
        let h = Histogram::detached();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let pairs: Vec<(u16, u64)> = s.nonzero_buckets().map(|(i, c)| (i as u16, c)).collect();
        prop_assert_eq!(pairs.len(), s.nonzero_len());
        let back = HistogramSnapshot::from_sparse(&pairs, s.sum(), s.max());
        prop_assert_eq!(back, Some(s));
    }
}

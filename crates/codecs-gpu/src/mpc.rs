//! MPC — Massively Parallel Compression (Yang et al. 2015; paper §4.2).
//!
//! Like SPDP, MPC was synthesized from a component search (138,240
//! combinations). The winning four-stage pipeline runs on chunks of 1024
//! words processed in parallel, one thread block each:
//!
//! 1. **LNVᵈs** — residual against the d-th prior value in the chunk,
//!    where d is the data dimensionality (the parameter exercised by the
//!    Table 9 md/1d experiment; the published pipeline is written "LNV6s"
//!    after the search's 6-dimensional training data);
//! 2. **BIT** — bit transpose of the chunk (same operation as bitshuffle);
//! 3. **LNV1s** — residual between consecutive transposed words;
//! 4. **ZE** — a bitmap marking zero words, non-zero words copied.
//!
//! Payload: `u32 nchunks | u8 dim | per-chunk u32 size | chunks | tail`,
//! with a verbatim tail for the last partial chunk.

use fcbench_codecs_cpu::bitshuffle::{bit_transpose, bit_untranspose};
use fcbench_codecs_cpu::common::{push_u32, read_u32};
use fcbench_codecs_cpu::ndzip::{unzigzag, zigzag};
use fcbench_core::{
    AuxTime, CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile,
    Platform, Precision, PrecisionSupport, Result,
};
use fcbench_gpu_sim::{Dir, Gpu, GpuConfig, TransferLedger};

/// Words per chunk (one thread block).
pub const CHUNK_WORDS: usize = 1024;

/// The MPC codec on the simulated GPU.
pub struct Mpc {
    gpu: Gpu,
    last_aux: crate::AuxSlot,
    /// LNV stride; `None` derives it from the data dimensionality.
    stride_override: Option<usize>,
}

impl Default for Mpc {
    fn default() -> Self {
        Self::new()
    }
}

impl Mpc {
    pub fn new() -> Self {
        Mpc {
            gpu: Gpu::new(GpuConfig::default()),
            last_aux: crate::AuxSlot::new(),
            stride_override: None,
        }
    }

    /// Fix the LNV stride (the original's published default is 6; passing
    /// the true dimensionality is how MPC is driven multi-dimensionally).
    pub fn with_stride(stride: usize) -> Self {
        assert!((1..CHUNK_WORDS).contains(&stride));
        Mpc {
            stride_override: Some(stride),
            ..Self::new()
        }
    }

    /// Derive the LNV stride from the descriptor: for 2-D tables the
    /// column count (interleaved fields), bounded to stay within a chunk;
    /// otherwise the published default of 6.
    fn stride_for(&self, desc: &DataDesc) -> usize {
        if let Some(s) = self.stride_override {
            return s;
        }
        match desc.dims.len() {
            2 if desc.dims[1] >= 2 && desc.dims[1] <= 64 => desc.dims[1],
            _ => 6,
        }
    }
}

/// Stage 1 forward: w[i] -= w[i - stride] (within the chunk), in reverse
/// index order so sources stay original.
fn lnv_forward(words: &mut [u64], stride: usize) {
    for i in (stride..words.len()).rev() {
        words[i] = words[i].wrapping_sub(words[i - stride]);
    }
}

fn lnv_inverse(words: &mut [u64], stride: usize) {
    for i in stride..words.len() {
        words[i] = words[i].wrapping_add(words[i - stride]);
    }
}

/// Compress one full chunk of `CHUNK_WORDS` words of `elem_bits` width.
fn compress_chunk(mut words: Vec<u64>, elem_bits: usize, stride: usize) -> Vec<u8> {
    let esize = elem_bits / 8;
    // (1) LNV-stride residuals, zigzag-folded so small negative deltas
    // keep high bit lanes clear for the ZE stage (same role as in ndzip).
    lnv_forward(&mut words, stride);
    for w in words.iter_mut() {
        *w = zigzag(*w & (u64::MAX >> (64 - elem_bits)), elem_bits as u32);
    }
    // (2) BIT transpose over the whole chunk.
    let mut raw = Vec::with_capacity(words.len() * esize);
    for &w in &words {
        raw.extend_from_slice(&w.to_le_bytes()[..esize]);
    }
    let t = bit_transpose(&raw, CHUNK_WORDS, elem_bits);
    // Transposed data = elem_bits lanes of CHUNK_WORDS bits = 128 bytes.
    // (3) LNV1s over the transposed *words* (lane-sized units).
    let lane_bytes = CHUNK_WORDS / 8;
    let nlanes = elem_bits;
    let mut lanes: Vec<Vec<u8>> = (0..nlanes)
        .map(|l| t[l * lane_bytes..(l + 1) * lane_bytes].to_vec())
        .collect();
    for l in (1..nlanes).rev() {
        let (prev, cur) = {
            let (a, b) = lanes.split_at_mut(l);
            (&a[l - 1], &mut b[0])
        };
        for (c, &p) in cur.iter_mut().zip(prev.iter()) {
            *c = c.wrapping_sub(p);
        }
    }
    // (4) ZE: zero-lane bitmap + non-zero lanes.
    let mut bitmap = vec![0u8; nlanes.div_ceil(8)];
    let mut body = Vec::with_capacity(t.len());
    for (l, lane) in lanes.iter().enumerate() {
        if lane.iter().any(|&b| b != 0) {
            bitmap[l / 8] |= 1 << (l % 8);
            body.extend_from_slice(lane);
        }
    }
    let mut out = Vec::with_capacity(bitmap.len() + body.len());
    out.extend_from_slice(&bitmap);
    out.extend_from_slice(&body);
    out
}

fn decompress_chunk(payload: &[u8], elem_bits: usize, stride: usize) -> Result<Vec<u64>> {
    let esize = elem_bits / 8;
    let lane_bytes = CHUNK_WORDS / 8;
    let nlanes = elem_bits;
    let bm_len = nlanes.div_ceil(8);
    let bitmap = payload
        .get(..bm_len)
        .ok_or_else(|| Error::Corrupt("mpc: bitmap truncated".into()))?;
    let mut lanes: Vec<Vec<u8>> = Vec::with_capacity(nlanes);
    let mut pos = bm_len;
    for l in 0..nlanes {
        if bitmap[l / 8] & (1 << (l % 8)) != 0 {
            let lane = payload
                .get(pos..pos + lane_bytes)
                .ok_or_else(|| Error::Corrupt("mpc: lane truncated".into()))?;
            lanes.push(lane.to_vec());
            pos += lane_bytes;
        } else {
            lanes.push(vec![0u8; lane_bytes]);
        }
    }
    if pos != payload.len() {
        return Err(Error::Corrupt("mpc: trailing bytes in chunk".into()));
    }
    // Inverse LNV1s over lanes.
    for l in 1..nlanes {
        let (prev, cur) = {
            let (a, b) = lanes.split_at_mut(l);
            (&a[l - 1], &mut b[0])
        };
        for (c, &p) in cur.iter_mut().zip(prev.iter()) {
            *c = c.wrapping_add(p);
        }
    }
    // Inverse BIT.
    let mut t = Vec::with_capacity(nlanes * lane_bytes);
    for lane in &lanes {
        t.extend_from_slice(lane);
    }
    let raw = bit_untranspose(&t, CHUNK_WORDS, elem_bits);
    let mut words = Vec::with_capacity(CHUNK_WORDS);
    for c in raw.chunks_exact(esize) {
        let mut le = [0u8; 8];
        le[..esize].copy_from_slice(c);
        words.push(u64::from_le_bytes(le));
    }
    // Inverse zigzag, then inverse LNV-stride.
    let mask = u64::MAX >> (64 - elem_bits);
    for w in words.iter_mut() {
        *w = unzigzag(*w, elem_bits as u32);
    }
    lnv_inverse(&mut words, stride);
    for w in words.iter_mut() {
        *w &= mask;
    }
    Ok(words)
}

fn words_of(data: &FloatData) -> (Vec<u64>, usize) {
    match data.desc().precision {
        Precision::Double => (data.as_u64_words().expect("precision checked"), 64),
        Precision::Single => (
            data.as_u32_words()
                .expect("precision checked")
                .into_iter()
                .map(u64::from)
                .collect(),
            32,
        ),
    }
}

impl Compressor for Mpc {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "mpc",
            year: 2015,
            community: Community::Hpc,
            class: CodecClass::Delta,
            platform: Platform::Gpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let ledger = TransferLedger::new();
        ledger.record(self.gpu.config(), Dir::HostToDevice, data.bytes().len());
        let (words, elem_bits) = words_of(data);
        let esize = elem_bits / 8;
        let stride = self.stride_for(data.desc());

        let nfull = words.len() / CHUNK_WORDS;
        let tail_words = &words[nfull * CHUNK_WORDS..];
        let items: Vec<Vec<u64>> = (0..nfull)
            .map(|k| words[k * CHUNK_WORDS..(k + 1) * CHUNK_WORDS].to_vec())
            .collect();
        let (streams, _stats) = self.gpu.launch(items, |ctx, chunk| {
            ctx.report_instructions((CHUNK_WORDS * elem_bits) as u64 / 8);
            compress_chunk(chunk, elem_bits, stride)
        });

        out.clear();
        push_u32(out, streams.len() as u32);
        out.push(stride as u8);
        for s in &streams {
            push_u32(out, s.len() as u32);
        }
        for s in &streams {
            out.extend_from_slice(s);
        }
        for &w in tail_words {
            out.extend_from_slice(&w.to_le_bytes()[..esize]);
        }

        ledger.record(self.gpu.config(), Dir::DeviceToHost, out.len());
        self.last_aux.store(&ledger);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let ledger = TransferLedger::new();
        ledger.record(self.gpu.config(), Dir::HostToDevice, payload.len());
        let elem_bits = desc.precision.bits();
        let esize = elem_bits / 8;
        let total_words = desc.elements();

        let mut pos = 0usize;
        let nchunks = read_u32(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("mpc: missing chunk count".into()))?
            as usize;
        let stride = *payload
            .get(pos)
            .ok_or_else(|| Error::Corrupt("mpc: missing stride".into()))?
            as usize;
        pos += 1;
        if stride == 0 || stride >= CHUNK_WORDS {
            return Err(Error::Corrupt("mpc: invalid stride".into()));
        }
        if nchunks != total_words / CHUNK_WORDS {
            return Err(Error::Corrupt("mpc: chunk count mismatch".into()));
        }
        let mut sizes = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            sizes.push(
                read_u32(payload, &mut pos)
                    .ok_or_else(|| Error::Corrupt("mpc: directory truncated".into()))?
                    as usize,
            );
        }
        let mut slices = Vec::with_capacity(nchunks);
        for &sz in &sizes {
            let s = payload
                .get(pos..pos + sz)
                .ok_or_else(|| Error::Corrupt("mpc: chunk truncated".into()))?;
            slices.push(s);
            pos += sz;
        }
        let tail_count = total_words - nchunks * CHUNK_WORDS;
        let tail = payload
            .get(pos..pos + tail_count * esize)
            .ok_or_else(|| Error::Corrupt("mpc: tail truncated".into()))?;
        if pos + tail_count * esize != payload.len() {
            return Err(Error::Corrupt("mpc: trailing bytes".into()));
        }

        let (results, _stats) = self.gpu.launch(slices, |_ctx, slice| {
            decompress_chunk(slice, elem_bits, stride)
        });

        let mut words = Vec::with_capacity(total_words);
        for r in results {
            words.extend_from_slice(&r?);
        }
        for c in tail.chunks_exact(esize) {
            let mut le = [0u8; 8];
            le[..esize].copy_from_slice(c);
            words.push(u64::from_le_bytes(le));
        }

        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            match desc.precision {
                Precision::Double => {
                    for w in words {
                        bytes.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Precision::Single => {
                    for w in words {
                        bytes.extend_from_slice(&(w as u32).to_le_bytes());
                    }
                }
            }
            Ok(())
        })?;
        ledger.record(self.gpu.config(), Dir::DeviceToHost, out.bytes().len());
        self.last_aux.store(&ledger);
        Ok(())
    }

    fn last_aux_time(&self) -> AuxTime {
        self.last_aux.get()
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Dominant kernel is the BIT transpose (like bitshuffle): ~3 int
        // ops per element-bit; the chunk is touched by all four stages.
        let bits = (desc.byte_len() * 8) as u64;
        Some(OpProfile {
            int_ops: 3 * bits,
            float_ops: 0,
            bytes_moved: 5 * desc.byte_len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip(codec: &Mpc, data: &FloatData) -> usize {
        let c = codec.compress(data).unwrap();
        let back = codec.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn lnv_inverts() {
        for stride in [1usize, 3, 6] {
            let mut w: Vec<u64> = (0..100).map(|i| (i * i * 31) as u64).collect();
            let orig = w.clone();
            lnv_forward(&mut w, stride);
            lnv_inverse(&mut w, stride);
            assert_eq!(w, orig, "stride {stride}");
        }
    }

    #[test]
    fn chunk_aligned_doubles() {
        let vals: Vec<f64> = (0..4096).map(|i| 100.0 + (i % 6) as f64).collect();
        let data = FloatData::from_f64(&vals, vec![4096], Domain::Hpc).unwrap();
        let n = round_trip(&Mpc::new(), &data);
        // Period-6 signal matches the default stride: residuals vanish
        // except at chunk heads, whose bits smear over a few dozen lanes.
        assert!(n < 8192, "period-6 data should compress 4x+, got {n}");
    }

    #[test]
    fn ragged_tail_round_trips() {
        for n in [1usize, 1000, 1024, 1025, 5000] {
            let vals: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
            let data = FloatData::from_f64(&vals, vec![n], Domain::Hpc).unwrap();
            round_trip(&Mpc::new(), &data);
        }
    }

    #[test]
    fn single_precision() {
        let vals: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.01).cos()).collect();
        let data = FloatData::from_f32(&vals, vec![8192], Domain::Hpc).unwrap();
        round_trip(&Mpc::new(), &data);
    }

    #[test]
    fn stride_follows_table_columns() {
        let mpc = Mpc::new();
        // 2-D table with 14 columns (solar-wind-like): stride = 14.
        let d = DataDesc::new(Precision::Single, vec![100, 14], Domain::TimeSeries).unwrap();
        assert_eq!(mpc.stride_for(&d), 14);
        // 1-D: default 6.
        let d1 = d.flatten_1d();
        assert_eq!(mpc.stride_for(&d1), 6);
        // 3-D grid: default 6.
        let d3 = DataDesc::new(Precision::Single, vec![16, 16, 16], Domain::Hpc).unwrap();
        assert_eq!(mpc.stride_for(&d3), 6);
        // Explicit override wins.
        assert_eq!(Mpc::with_stride(3).stride_for(&d), 3);
    }

    #[test]
    fn interleaved_table_benefits_from_column_stride() {
        // 8 interleaved channels with slowly-varying values.
        let rows = 2048;
        let cols = 8;
        let mut vals = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                vals.push(1000.0 * c as f64 + (r / 50) as f64);
            }
        }
        let data_md = FloatData::from_f64(&vals, vec![rows, cols], Domain::TimeSeries).unwrap();
        let md = round_trip(&Mpc::new(), &data_md);
        let oned = round_trip(&Mpc::new(), &data_md.flattened_1d());
        assert!(
            md <= oned,
            "column stride ({md}) should not lose to 1-d ({oned})"
        );
    }

    #[test]
    fn special_values() {
        let mut vals = vec![1.0f64; 2048];
        vals[0] = f64::NAN;
        vals[500] = f64::NEG_INFINITY;
        vals[1024] = -0.0;
        vals[2047] = 5e-324;
        let data = FloatData::from_f64(&vals, vec![2048], Domain::Hpc).unwrap();
        round_trip(&Mpc::new(), &data);
    }

    #[test]
    fn aux_time_models_transfers() {
        let mpc = Mpc::new();
        let vals: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![4096], Domain::Hpc).unwrap();
        let _ = mpc.compress(&data).unwrap();
        assert!(mpc.last_aux_time().total() > 0.0);
    }

    #[test]
    fn corruption_rejected() {
        let mpc = Mpc::new();
        let vals: Vec<f64> = (0..2048).map(|i| (i * 3) as f64).collect();
        let data = FloatData::from_f64(&vals, vec![2048], Domain::Hpc).unwrap();
        let c = mpc.compress(&data).unwrap();
        assert!(mpc.decompress(&c[..3], data.desc()).is_err());
        assert!(mpc.decompress(&c[..c.len() - 1], data.desc()).is_err());
        let mut bad = c.clone();
        bad[4] = 0; // zero the stride byte
        assert!(mpc.decompress(&bad, data.desc()).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let info = Mpc::new().info();
        assert_eq!(info.name, "mpc");
        assert_eq!(info.platform, Platform::Gpu);
        assert_eq!(info.year, 2015);
    }
}

//! GFC (O'Neil & Burtscher 2011; paper §4.1).
//!
//! GFC divides the input into chunks equal to the number of GPU warps,
//! each chunk into **subchunks of 32 doubles** (one per warp lane, 256
//! bytes). Residuals subtract **the last value of the previous subchunk**
//! from every value of the current one — a deliberately cheap predictor
//! that "sacrifices accuracy to accommodate multidimensional data within
//! fixed-sized subchunks" (the reason GFC ranks last in Fig. 7b). Each
//! residual is coded as 4 bits (sign + leading-zero-byte count) followed
//! by the non-zero bytes.
//!
//! Constraints reproduced from the original: input beyond
//! [`Gfc::DEFAULT_INPUT_LIMIT`] is rejected (the paper's Table 4 dashes),
//! scaled by the harness along with dataset sizes. Like the paper's runs
//! on fp32 datasets, non-double inputs are consumed as a raw u64 word
//! stream with a verbatim tail.
//!
//! Payload: `u64 nwords | u32 nchunks | u8 tail_len | per-chunk u32 size |
//! chunk streams | tail`.

use fcbench_codecs_cpu::common::{chunk_ranges, push_u32, push_u64, read_u32, read_u64};
use fcbench_core::{
    AuxTime, CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile,
    Platform, PrecisionSupport, Result,
};
use fcbench_gpu_sim::{Dir, Gpu, GpuConfig, TransferLedger};

/// Values per subchunk (one GPU warp of 32 lanes).
pub const SUBCHUNK: usize = 32;

/// The GFC codec on the simulated GPU.
pub struct Gfc {
    gpu: Gpu,
    last_aux: crate::AuxSlot,
    input_limit: usize,
    /// Number of parallel chunks (the original sizes this to the warp
    /// count resident on the device).
    chunks: usize,
}

impl Default for Gfc {
    fn default() -> Self {
        Self::new()
    }
}

impl Gfc {
    /// The original's hardware-era input limit (§4.1).
    pub const DEFAULT_INPUT_LIMIT: usize = 512 * 1024 * 1024;

    pub fn new() -> Self {
        Self::with_config(GpuConfig::default(), Self::DEFAULT_INPUT_LIMIT)
    }

    /// Custom device and input limit (the harness scales the limit with
    /// dataset scale so the paper's failing cells fail here too).
    pub fn with_config(config: GpuConfig, input_limit: usize) -> Self {
        let chunks = config.sm_count * 16; // warps resident across SMs
        Gfc {
            gpu: Gpu::new(config),
            last_aux: crate::AuxSlot::new(),
            input_limit,
            chunks,
        }
    }
}

/// Compress one chunk of words: subchunks of 32, delta against the last
/// value of the previous subchunk.
fn compress_chunk(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    let mut codes = Vec::with_capacity(words.len().div_ceil(2));
    let mut residuals = Vec::with_capacity(words.len() * 4);
    let mut nibble_pending: Option<u8> = None;
    let mut prev_last = 0u64;

    for sub in words.chunks(SUBCHUNK) {
        for &w in sub {
            let r = w.wrapping_sub(prev_last) as i64;
            let (sign, mag) = if r < 0 {
                (1u8, r.unsigned_abs())
            } else {
                (0u8, r as u64)
            };
            let lzb = (mag.leading_zeros() / 8).min(7);
            let nib = (sign << 3) | lzb as u8;
            match nibble_pending.take() {
                None => nibble_pending = Some(nib),
                Some(first) => codes.push((first << 4) | nib),
            }
            let nbytes = 8 - lzb as usize;
            residuals.extend_from_slice(&mag.to_le_bytes()[..nbytes]);
        }
        prev_last = *sub.last().expect("chunks are non-empty");
    }
    if let Some(first) = nibble_pending {
        codes.push(first << 4);
    }

    push_u32(&mut out, codes.len() as u32);
    push_u32(&mut out, residuals.len() as u32);
    out.extend_from_slice(&codes);
    out.extend_from_slice(&residuals);
    out
}

fn decompress_chunk(payload: &[u8], count: usize) -> Result<Vec<u64>> {
    let mut pos = 0usize;
    let ncodes = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("gfc: missing code count".into()))? as usize;
    let nres = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("gfc: missing residual count".into()))?
        as usize;
    if ncodes != count.div_ceil(2) {
        return Err(Error::Corrupt("gfc: code count mismatch".into()));
    }
    let codes = payload
        .get(pos..pos + ncodes)
        .ok_or_else(|| Error::Corrupt("gfc: codes truncated".into()))?;
    let residuals = payload
        .get(pos + ncodes..pos + ncodes + nres)
        .ok_or_else(|| Error::Corrupt("gfc: residuals truncated".into()))?;

    let mut words = Vec::with_capacity(count);
    let mut rpos = 0usize;
    let mut prev_last = 0u64;
    for idx in 0..count {
        let cb = codes[idx / 2];
        let nib = if idx % 2 == 0 { cb >> 4 } else { cb & 0x0F };
        let sign = nib >> 3;
        let lzb = (nib & 7) as usize;
        let nbytes = 8 - lzb;
        // Word path: one unaligned 8-byte load + mask covers every
        // residual width; the byte-copy fallback only runs near the end
        // of the chunk's residual stream.
        let mag = if let Some(s) = residuals.get(rpos..rpos + 8) {
            let w = u64::from_le_bytes(s.try_into().expect("8 bytes"));
            if nbytes == 8 {
                w
            } else {
                w & ((1u64 << (8 * nbytes)) - 1)
            }
        } else {
            let raw = residuals
                .get(rpos..rpos + nbytes)
                .ok_or_else(|| Error::Corrupt("gfc: residual stream truncated".into()))?;
            let mut le = [0u8; 8];
            le[..nbytes].copy_from_slice(raw);
            u64::from_le_bytes(le)
        };
        rpos += nbytes;
        let r = if sign == 1 {
            (mag as i64).wrapping_neg()
        } else {
            mag as i64
        };
        let w = prev_last.wrapping_add(r as u64);
        words.push(w);
        // Subchunk boundary bookkeeping.
        if (idx + 1) % SUBCHUNK == 0 || idx + 1 == count {
            prev_last = w;
        }
    }
    if rpos != residuals.len() {
        return Err(Error::Corrupt("gfc: trailing residual bytes".into()));
    }
    Ok(words)
}

impl Compressor for Gfc {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "gfc",
            year: 2011,
            community: Community::Hpc,
            class: CodecClass::Delta,
            platform: Platform::Gpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        if data.bytes().len() > self.input_limit {
            return Err(Error::Unsupported(format!(
                "gfc: input of {} bytes exceeds the {} byte limit",
                data.bytes().len(),
                self.input_limit
            )));
        }
        let ledger = TransferLedger::new();
        ledger.record(self.gpu.config(), Dir::HostToDevice, data.bytes().len());

        let bytes = data.bytes();
        let nwords = bytes.len() / 8;
        let tail = &bytes[nwords * 8..];
        let words: Vec<u64> = bytes[..nwords * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect();

        // Each chunk should hold enough subchunks to amortize its warmup
        // (the first subchunk deltas against zero); the original sizes
        // chunks to the resident warp count on multi-GB inputs.
        let chunks = self.chunks.min(nwords.div_ceil(1024)).max(1);
        let ranges = chunk_ranges(nwords, chunks);
        let items: Vec<&[u64]> = ranges.iter().map(|&(s, e)| &words[s..e]).collect();
        let (streams, _stats) = self.gpu.launch(items, |ctx, chunk| {
            // Delta + leading-zero coding: uniform control flow, no
            // divergence to report (GFC's strength on GPUs).
            ctx.report_instructions(chunk.len() as u64 * 8);
            compress_chunk(chunk)
        });

        out.clear();
        push_u64(out, nwords as u64);
        push_u32(out, streams.len() as u32);
        out.push(tail.len() as u8);
        for s in &streams {
            push_u32(out, s.len() as u32);
        }
        for s in &streams {
            out.extend_from_slice(s);
        }
        out.extend_from_slice(tail);

        ledger.record(self.gpu.config(), Dir::DeviceToHost, out.len());
        self.last_aux.store(&ledger);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let ledger = TransferLedger::new();
        ledger.record(self.gpu.config(), Dir::HostToDevice, payload.len());

        let mut pos = 0usize;
        let nwords = read_u64(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("gfc: missing word count".into()))?
            as usize;
        let nchunks = read_u32(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("gfc: missing chunk count".into()))?
            as usize;
        let tail_len = *payload
            .get(pos)
            .ok_or_else(|| Error::Corrupt("gfc: missing tail length".into()))?
            as usize;
        pos += 1;
        // Validate against the descriptor before any allocation sized by
        // stream-supplied counts (fuzzed payloads must not OOM).
        if nwords != desc.byte_len() / 8 || tail_len != desc.byte_len() % 8 {
            return Err(Error::Corrupt(format!(
                "gfc: stream geometry ({nwords} words + {tail_len}) does not match descriptor"
            )));
        }
        if nchunks > nwords.max(1) {
            return Err(Error::Corrupt("gfc: more chunks than words".into()));
        }
        let mut sizes = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            sizes.push(
                read_u32(payload, &mut pos)
                    .ok_or_else(|| Error::Corrupt("gfc: directory truncated".into()))?
                    as usize,
            );
        }
        let ranges = chunk_ranges(nwords, nchunks.max(1));
        if ranges.len() != nchunks {
            return Err(Error::Corrupt("gfc: chunk layout mismatch".into()));
        }
        let mut slices = Vec::with_capacity(nchunks);
        for &sz in &sizes {
            let s = payload
                .get(pos..pos + sz)
                .ok_or_else(|| Error::Corrupt("gfc: chunk truncated".into()))?;
            slices.push(s);
            pos += sz;
        }
        let tail = payload
            .get(pos..pos + tail_len)
            .ok_or_else(|| Error::Corrupt("gfc: tail truncated".into()))?;
        if pos + tail_len != payload.len() {
            return Err(Error::Corrupt("gfc: trailing bytes".into()));
        }

        let items: Vec<(&[u8], usize)> = slices
            .iter()
            .zip(ranges.iter())
            .map(|(&s, &(a, b))| (s, b - a))
            .collect();
        let (results, _stats) = self
            .gpu
            .launch(items, |_ctx, (slice, count)| decompress_chunk(slice, count));

        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            for r in results {
                for w in r? {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
            }
            bytes.extend_from_slice(tail);
            Ok(())
        })?;

        ledger.record(self.gpu.config(), Dir::DeviceToHost, out.bytes().len());
        self.last_aux.store(&ledger);
        Ok(())
    }

    fn last_aux_time(&self) -> AuxTime {
        self.last_aux.get()
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Per word: subtract, sign/abs, lz count, nibble pack — ~8 int ops;
        // reads the word, writes ~the word back. FP ops none.
        let n = (desc.byte_len() / 8) as u64;
        Some(OpProfile {
            int_ops: 8 * n,
            float_ops: 0,
            bytes_moved: 2 * 8 * n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn small_gfc() -> Gfc {
        Gfc::with_config(GpuConfig::tiny(), Gfc::DEFAULT_INPUT_LIMIT)
    }

    fn round_trip(codec: &Gfc, data: &FloatData) -> usize {
        let c = codec.compress(data).unwrap();
        let back = codec.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn linear_ramp_compresses() {
        let vals: Vec<f64> = (0..20_000).map(|i| 1e6 + i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![20_000], Domain::Hpc).unwrap();
        let n = round_trip(&small_gfc(), &data);
        assert!(n < 20_000 * 8, "ramp must compress, got {n}");
    }

    #[test]
    fn random_survives() {
        let mut x = 0xC0FFEEu64;
        let vals: Vec<f64> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits(x)
            })
            .collect();
        let data = FloatData::from_f64(&vals, vec![5000], Domain::Database).unwrap();
        round_trip(&small_gfc(), &data);
    }

    #[test]
    fn special_values() {
        let vals = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
        ];
        let data = FloatData::from_f64(&vals, vec![6], Domain::Hpc).unwrap();
        round_trip(&small_gfc(), &data);
    }

    #[test]
    fn single_precision_via_reinterpretation_with_tail() {
        let vals: Vec<f32> = (0..4001).map(|i| i as f32 * 0.5).collect();
        let data = FloatData::from_f32(&vals, vec![4001], Domain::Hpc).unwrap();
        round_trip(&small_gfc(), &data);
    }

    #[test]
    fn input_limit_enforced() {
        let gfc = Gfc::with_config(GpuConfig::tiny(), 1024);
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![1000], Domain::Hpc).unwrap();
        let err = gfc.compress(&data).unwrap_err();
        assert!(
            matches!(err, Error::Unsupported(_)),
            "8000 bytes > 1024 limit"
        );
    }

    #[test]
    fn aux_time_models_transfers() {
        let gfc = small_gfc();
        let vals: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![10_000], Domain::Hpc).unwrap();
        let _ = gfc.compress(&data).unwrap();
        let aux = gfc.last_aux_time();
        assert!(aux.h2d_seconds > 0.0, "h2d copy must be modelled");
        assert!(aux.d2h_seconds > 0.0, "d2h copy must be modelled");
        // 80 KB over a 1 GB/s link: h2d ≈ 80 µs.
        assert!(aux.h2d_seconds > 5e-5 && aux.h2d_seconds < 5e-4);
    }

    #[test]
    fn constant_stream_collapses() {
        // Large enough that per-chunk warmup (each chunk's first subchunk
        // deltas against zero) is amortized.
        let vals = vec![42.0f64; 32_000];
        let data = FloatData::from_f64(&vals, vec![32_000], Domain::Hpc).unwrap();
        let n = round_trip(&small_gfc(), &data);
        // Mostly-zero residuals: ~0.5 byte/code + 1 zero byte per value.
        assert!(n < vals.len() * 2, "constant stream should shrink, got {n}");
    }

    #[test]
    fn coarse_predictor_weakness_is_reproduced() {
        // §4.1 insight: GFC "computes all residuals for the current 32
        // values by subtracting the last value from the previous 32", so a
        // stream that is constant *within* each subchunk but jumps between
        // subchunks pays the jump on every one of the 32 values — the
        // reason GFC ranks last in Fig. 7b.
        let mut jumpy = Vec::new();
        for s in 0..1000 {
            jumpy.extend(std::iter::repeat_n((s * 1000) as f64, SUBCHUNK));
        }
        let constant = vec![7.0f64; jumpy.len()];
        let d_jumpy = FloatData::from_f64(&jumpy, vec![jumpy.len()], Domain::Hpc).unwrap();
        let d_const = FloatData::from_f64(&constant, vec![constant.len()], Domain::Hpc).unwrap();
        let n_jumpy = round_trip(&small_gfc(), &d_jumpy);
        let n_const = round_trip(&small_gfc(), &d_const);
        assert!(
            n_jumpy > 2 * n_const,
            "per-subchunk jumps ({n_jumpy}) must cost far more than constant ({n_const})"
        );
    }

    #[test]
    fn corruption_rejected() {
        let gfc = small_gfc();
        let vals: Vec<f64> = (0..500).map(|i| i as f64 * 2.5).collect();
        let data = FloatData::from_f64(&vals, vec![500], Domain::Hpc).unwrap();
        let c = gfc.compress(&data).unwrap();
        assert!(gfc.decompress(&c[..6], data.desc()).is_err());
        assert!(gfc.decompress(&c[..c.len() - 1], data.desc()).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let info = Gfc::new().info();
        assert_eq!(info.name, "gfc");
        assert_eq!(info.platform, Platform::Gpu);
        assert_eq!(info.class, CodecClass::Delta);
        assert_eq!(info.year, 2011);
    }
}

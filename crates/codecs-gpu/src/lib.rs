//! # fcbench-codecs-gpu
//!
//! The five GPU-based compressors of FCBench §4, executing on the
//! `fcbench-gpu-sim` SIMT simulator (see DESIGN.md's substitution table):
//!
//! | Codec | Paper § | Class | Notes |
//! |---|---|---|---|
//! | [`Gfc`] | 4.1 | delta | warp subchunks of 32 doubles, input limit |
//! | [`Mpc`] | 4.2 | delta + transpose | LNVd/BIT/LNV1/ZE pipeline |
//! | [`NvLz4`] | 4.3 | dictionary | batched pages, divergence-heavy |
//! | [`NvBitcomp`] | 4.3 | prediction | delta + LZ suppression, fastest |
//! | [`NdzipGpu`] | 4.4 | Lorenzo | shared pipeline with ndzip-CPU |
//!
//! All model host↔device transfer cost, surfaced via
//! [`fcbench_core::Compressor::last_aux_time`] for the paper's Table 6
//! end-to-end wall times.

pub mod gfc;
pub mod mpc;
pub mod ndzip_gpu;
pub mod nvcomp;

pub use gfc::Gfc;
pub use mpc::Mpc;
pub use ndzip_gpu::NdzipGpu;
pub use nvcomp::{NvBitcomp, NvLz4};

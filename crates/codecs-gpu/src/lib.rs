//! # fcbench-codecs-gpu
//!
//! The five GPU-based compressors of FCBench §4, executing on the
//! `fcbench-gpu-sim` SIMT simulator (see DESIGN.md's substitution table):
//!
//! | Codec | Paper § | Class | Notes |
//! |---|---|---|---|
//! | [`Gfc`] | 4.1 | delta | warp subchunks of 32 doubles, input limit |
//! | [`Mpc`] | 4.2 | delta + transpose | LNVd/BIT/LNV1/ZE pipeline |
//! | [`NvLz4`] | 4.3 | dictionary | batched pages, divergence-heavy |
//! | [`NvBitcomp`] | 4.3 | prediction | delta + LZ suppression, fastest |
//! | [`NdzipGpu`] | 4.4 | Lorenzo | shared pipeline with ndzip-CPU |
//!
//! All model host↔device transfer cost, surfaced via
//! [`fcbench_core::Compressor::last_aux_time`] for the paper's Table 6
//! end-to-end wall times.

#![forbid(unsafe_code)]

pub mod gfc;
pub mod mpc;
pub mod ndzip_gpu;
pub mod nvcomp;

/// Last-completed-call transfer times for a GPU codec instance.
///
/// The transfer ledger is per call, not per instance: the registry shares
/// one codec `Arc` across pipeline workers, so concurrent calls must not
/// interleave their transfer records. This slot stays single: under
/// concurrent calls it holds the most recently *completed* call's coherent
/// totals (last writer wins), which is all
/// [`fcbench_core::Compressor::last_aux_time`] promises.
pub(crate) struct AuxSlot(parking_lot::Mutex<fcbench_core::AuxTime>);

impl AuxSlot {
    pub(crate) fn new() -> Self {
        AuxSlot(parking_lot::Mutex::new(fcbench_core::AuxTime::default()))
    }

    pub(crate) fn store(&self, ledger: &fcbench_gpu_sim::TransferLedger) {
        let (h2d, d2h) = ledger.totals();
        *self.0.lock() = fcbench_core::AuxTime {
            h2d_seconds: h2d,
            d2h_seconds: d2h,
        };
    }

    pub(crate) fn get(&self) -> fcbench_core::AuxTime {
        *self.0.lock()
    }
}

pub use gfc::Gfc;
pub use mpc::Mpc;
pub use ndzip_gpu::NdzipGpu;
pub use nvcomp::{NvBitcomp, NvLz4};

//! nvCOMP-class batched GPU codecs (paper §4.3).
//!
//! nvCOMP has been proprietary since v2.3 and publishes no workflow, so
//! these implementations match its *interface contract* and measured
//! profile instead (see DESIGN.md's substitution table):
//!
//! - [`NvLz4`] — batched LZ4: the input is cut into fixed pages, each
//!   compressed by one thread block with our from-scratch LZ4. Dictionary
//!   matching has data-dependent branches, which the kernels report as
//!   divergence — the cause of nvCOMP::LZ4's low GPU compression speed
//!   (Observation 3) and its very fast decompression (Observation 4).
//! - [`NvBitcomp`] — "transform + prediction" per NVIDIA's description:
//!   per page, a delta predictor over words followed by vectorized
//!   leading-zero-byte suppression. Uniform control flow, the fastest
//!   method and the weakest ratio, matching bitcomp's published profile.
//!
//! Neither takes dimensionality parameters, as the paper notes.

use fcbench_codecs_cpu::common::{push_u32, read_u32};
use fcbench_core::{
    AuxTime, CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile,
    Platform, PrecisionSupport, Result,
};
use fcbench_entropy::lz4;
use fcbench_gpu_sim::{Dir, Gpu, GpuConfig, TransferLedger};

/// Batched page size (nvCOMP's default batch granularity).
pub const PAGE_BYTES: usize = 64 * 1024;

/// Shared batched-page scaffolding for both nvCOMP-class codecs.
struct Batched {
    gpu: Gpu,
    last_aux: crate::AuxSlot,
}

impl Batched {
    fn new() -> Self {
        Batched {
            gpu: Gpu::new(GpuConfig::default()),
            last_aux: crate::AuxSlot::new(),
        }
    }

    /// Compress pages with `kernel` into `out` (contents replaced),
    /// assembling the standard container:
    /// `u32 npages | per-page u32 size | pages`.
    fn compress_pages<K>(&self, bytes: &[u8], out: &mut Vec<u8>, kernel: K) -> usize
    where
        K: Fn(&fcbench_gpu_sim::KernelCtx<'_>, &[u8]) -> Vec<u8> + Sync,
    {
        let ledger = TransferLedger::new();
        ledger.record(self.gpu.config(), Dir::HostToDevice, bytes.len());
        let pages: Vec<&[u8]> = bytes.chunks(PAGE_BYTES).collect();
        let (streams, _stats) = self.gpu.launch(pages, |ctx, page| kernel(ctx, page));
        let total: usize = streams.iter().map(|s| s.len()).sum();
        out.clear();
        out.reserve(8 + 4 * streams.len() + total);
        push_u32(out, streams.len() as u32);
        for s in &streams {
            push_u32(out, s.len() as u32);
        }
        for s in &streams {
            out.extend_from_slice(s);
        }
        ledger.record(self.gpu.config(), Dir::DeviceToHost, out.len());
        self.last_aux.store(&ledger);
        out.len()
    }

    /// Decompress a page container with `kernel(page_payload, raw_len)`,
    /// appending the decoded bytes to `out`.
    fn decompress_pages<K>(
        &self,
        payload: &[u8],
        total_len: usize,
        out: &mut Vec<u8>,
        kernel: K,
    ) -> Result<()>
    where
        K: Fn(&[u8], usize) -> Result<Vec<u8>> + Sync,
    {
        let ledger = TransferLedger::new();
        ledger.record(self.gpu.config(), Dir::HostToDevice, payload.len());
        let mut pos = 0usize;
        let npages = read_u32(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("nvcomp: missing page count".into()))?
            as usize;
        let expected_pages = total_len.div_ceil(PAGE_BYTES).max(1);
        if npages != expected_pages {
            return Err(Error::Corrupt("nvcomp: page count mismatch".into()));
        }
        let mut sizes = Vec::with_capacity(npages);
        for _ in 0..npages {
            sizes.push(
                read_u32(payload, &mut pos)
                    .ok_or_else(|| Error::Corrupt("nvcomp: directory truncated".into()))?
                    as usize,
            );
        }
        let mut items = Vec::with_capacity(npages);
        let mut remaining = total_len;
        for &sz in &sizes {
            let s = payload
                .get(pos..pos + sz)
                .ok_or_else(|| Error::Corrupt("nvcomp: page truncated".into()))?;
            let raw_len = remaining.min(PAGE_BYTES);
            items.push((s, raw_len));
            remaining -= raw_len;
            pos += sz;
        }
        if pos != payload.len() {
            return Err(Error::Corrupt("nvcomp: trailing bytes".into()));
        }
        if remaining != 0 {
            return Err(Error::Corrupt("nvcomp: pages do not cover the data".into()));
        }
        let (results, _stats) = self
            .gpu
            .launch(items, |_ctx, (page, raw_len)| kernel(page, raw_len));
        out.reserve(total_len);
        for r in results {
            out.extend_from_slice(&r?);
        }
        ledger.record(self.gpu.config(), Dir::DeviceToHost, out.len());
        self.last_aux.store(&ledger);
        Ok(())
    }
}

/// nvCOMP::LZ4-class batched LZ4.
pub struct NvLz4 {
    inner: Batched,
}

impl Default for NvLz4 {
    fn default() -> Self {
        Self::new()
    }
}

impl NvLz4 {
    pub fn new() -> Self {
        NvLz4 {
            inner: Batched::new(),
        }
    }
}

impl Compressor for NvLz4 {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "nvcomp-lz4",
            year: 2020,
            community: Community::General,
            class: CodecClass::Dictionary,
            platform: Platform::Gpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        Ok(self.inner.compress_pages(data.bytes(), out, |ctx, page| {
            // Dictionary matching: every hash-probe mismatch is a
            // data-dependent branch — report coarse divergence.
            ctx.report_divergence();
            ctx.report_instructions(page.len() as u64 * 12);
            lz4::compress(page)
        }))
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        out.refill(desc, |bytes| {
            self.inner
                .decompress_pages(payload, desc.byte_len(), bytes, |page, raw| {
                    lz4::decompress(page, raw).map_err(|e| Error::Corrupt(e.to_string()))
                })
        })
    }

    fn last_aux_time(&self) -> AuxTime {
        self.inner.last_aux.get()
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // LZ4 kernel: hash, probe, compare per byte — ~12 int ops/byte,
        // reads input + table traffic.
        let b = desc.byte_len() as u64;
        Some(OpProfile {
            int_ops: 12 * b,
            float_ops: 0,
            bytes_moved: 3 * b,
        })
    }
}

/// nvCOMP::bitcomp-class delta + leading-zero suppression.
pub struct NvBitcomp {
    inner: Batched,
}

impl Default for NvBitcomp {
    fn default() -> Self {
        Self::new()
    }
}

impl NvBitcomp {
    pub fn new() -> Self {
        NvBitcomp {
            inner: Batched::new(),
        }
    }
}

/// bitcomp-class page codec: u64-word delta then 4-bit leading-zero-byte
/// codes + non-zero bytes, with a verbatim sub-8-byte tail.
fn bitcomp_page(page: &[u8]) -> Vec<u8> {
    let nwords = page.len() / 8;
    let tail = &page[nwords * 8..];
    let mut codes = Vec::with_capacity(nwords.div_ceil(2));
    let mut residuals = Vec::with_capacity(page.len() / 2);
    let mut pending: Option<u8> = None;
    let mut prev = 0u64;
    for c in page[..nwords * 8].chunks_exact(8) {
        let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        let delta = w.wrapping_sub(prev);
        prev = w;
        let lzb = (delta.leading_zeros() / 8).min(7) as u8;
        match pending.take() {
            None => pending = Some(lzb),
            Some(first) => codes.push((first << 4) | lzb),
        }
        residuals.extend_from_slice(&delta.to_le_bytes()[..8 - lzb as usize]);
    }
    if let Some(first) = pending {
        codes.push(first << 4);
    }
    let mut out = Vec::with_capacity(10 + codes.len() + residuals.len() + tail.len());
    push_u32(&mut out, codes.len() as u32);
    push_u32(&mut out, residuals.len() as u32);
    out.extend_from_slice(&codes);
    out.extend_from_slice(&residuals);
    out.extend_from_slice(tail);
    out
}

fn bitcomp_unpage(payload: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let nwords = raw_len / 8;
    let tail_len = raw_len - nwords * 8;
    let mut pos = 0usize;
    let ncodes = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("bitcomp: missing code count".into()))?
        as usize;
    let nres = read_u32(payload, &mut pos)
        .ok_or_else(|| Error::Corrupt("bitcomp: missing residual count".into()))?
        as usize;
    if ncodes != nwords.div_ceil(2) {
        return Err(Error::Corrupt("bitcomp: code count mismatch".into()));
    }
    let codes = payload
        .get(pos..pos + ncodes)
        .ok_or_else(|| Error::Corrupt("bitcomp: codes truncated".into()))?;
    let residuals = payload
        .get(pos + ncodes..pos + ncodes + nres)
        .ok_or_else(|| Error::Corrupt("bitcomp: residuals truncated".into()))?;
    let tail = payload
        .get(pos + ncodes + nres..pos + ncodes + nres + tail_len)
        .ok_or_else(|| Error::Corrupt("bitcomp: tail truncated".into()))?;
    if pos + ncodes + nres + tail_len != payload.len() {
        return Err(Error::Corrupt("bitcomp: trailing bytes".into()));
    }

    let mut out = Vec::with_capacity(raw_len);
    let mut rpos = 0usize;
    let mut prev = 0u64;
    for idx in 0..nwords {
        let cb = codes[idx / 2];
        let lzb = (if idx % 2 == 0 { cb >> 4 } else { cb & 0x0F } & 7) as usize;
        let nbytes = 8 - lzb;
        let raw = residuals
            .get(rpos..rpos + nbytes)
            .ok_or_else(|| Error::Corrupt("bitcomp: residual stream truncated".into()))?;
        rpos += nbytes;
        let mut le = [0u8; 8];
        le[..nbytes].copy_from_slice(raw);
        let delta = u64::from_le_bytes(le);
        prev = prev.wrapping_add(delta);
        out.extend_from_slice(&prev.to_le_bytes());
    }
    if rpos != residuals.len() {
        return Err(Error::Corrupt("bitcomp: unread residual bytes".into()));
    }
    out.extend_from_slice(tail);
    Ok(out)
}

impl Compressor for NvBitcomp {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "nvcomp-bitcomp",
            year: 2020,
            community: Community::General,
            class: CodecClass::Prediction,
            platform: Platform::Gpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        Ok(self.inner.compress_pages(data.bytes(), out, |ctx, page| {
            // Uniform control flow: no divergence reported.
            ctx.report_instructions(page.len() as u64 * 2);
            bitcomp_page(page)
        }))
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        out.refill(desc, |bytes| {
            self.inner
                .decompress_pages(payload, desc.byte_len(), bytes, bitcomp_unpage)
        })
    }

    fn last_aux_time(&self) -> AuxTime {
        self.inner.last_aux.get()
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Delta + lz count: ~4 int ops per word — bandwidth-bound, the
        // closest dot to the GPU memory roof in Fig. 11b.
        let n = (desc.byte_len() / 8) as u64;
        Some(OpProfile {
            int_ops: 4 * n,
            float_ops: 0,
            bytes_moved: 2 * 8 * n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip(codec: &dyn Compressor, data: &FloatData) -> usize {
        let c = codec.compress(data).unwrap();
        let back = codec.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn lz4_pages_round_trip() {
        let vals: Vec<f64> = (0..50_000).map(|i| ((i / 17) % 100) as f64).collect();
        let data = FloatData::from_f64(&vals, vec![50_000], Domain::TimeSeries).unwrap();
        let n = round_trip(&NvLz4::new(), &data);
        assert!(
            n < data.bytes().len(),
            "repetitive data must compress, got {n}"
        );
    }

    #[test]
    fn bitcomp_pages_round_trip() {
        let vals: Vec<f64> = (0..50_000).map(|i| 1e7 + i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![50_000], Domain::Hpc).unwrap();
        let n = round_trip(&NvBitcomp::new(), &data);
        assert!(n < data.bytes().len(), "linear ramp must compress, got {n}");
    }

    #[test]
    fn bitcomp_is_weaker_but_works_on_noise() {
        let mut x = 7u64;
        let vals: Vec<f64> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits(x)
            })
            .collect();
        let data = FloatData::from_f64(&vals, vec![20_000], Domain::Database).unwrap();
        round_trip(&NvBitcomp::new(), &data);
        round_trip(&NvLz4::new(), &data);
    }

    #[test]
    fn ragged_sizes() {
        for n in [1usize, 100, 8192, 8193, 100_000] {
            let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let data = FloatData::from_f32(&vals, vec![n], Domain::Hpc).unwrap();
            round_trip(&NvLz4::new(), &data);
            round_trip(&NvBitcomp::new(), &data);
        }
    }

    #[test]
    fn special_values() {
        let vals = [f64::NAN, f64::INFINITY, -0.0, 5e-324, 1.0, -1.0];
        let data = FloatData::from_f64(&vals, vec![6], Domain::Hpc).unwrap();
        round_trip(&NvLz4::new(), &data);
        round_trip(&NvBitcomp::new(), &data);
    }

    #[test]
    fn aux_times_are_modelled() {
        let codec = NvBitcomp::new();
        let vals: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![10_000], Domain::Hpc).unwrap();
        let _ = codec.compress(&data).unwrap();
        assert!(codec.last_aux_time().total() > 0.0);
    }

    #[test]
    fn no_dimension_parameters_needed() {
        // Identical bytes in 1-D and 3-D shapes give identical payloads:
        // the codecs ignore dimensionality (§4.3 insight).
        let vals: Vec<f64> = (0..4096).map(|i| (i % 77) as f64).collect();
        let d1 = FloatData::from_f64(&vals, vec![4096], Domain::Hpc).unwrap();
        let d3 = FloatData::from_f64(&vals, vec![16, 16, 16], Domain::Hpc).unwrap();
        assert_eq!(
            NvLz4::new().compress(&d1).unwrap(),
            NvLz4::new().compress(&d3).unwrap()
        );
        assert_eq!(
            NvBitcomp::new().compress(&d1).unwrap(),
            NvBitcomp::new().compress(&d3).unwrap()
        );
    }

    #[test]
    fn corruption_rejected() {
        let codec = NvLz4::new();
        let vals: Vec<f64> = (0..10_000).map(|i| (i % 50) as f64).collect();
        let data = FloatData::from_f64(&vals, vec![10_000], Domain::Hpc).unwrap();
        let c = codec.compress(&data).unwrap();
        assert!(codec.decompress(&c[..3], data.desc()).is_err());
        assert!(codec.decompress(&c[..c.len() - 1], data.desc()).is_err());
        let mut extra = c.clone();
        extra.push(0);
        assert!(codec.decompress(&extra, data.desc()).is_err());
    }

    #[test]
    fn info_rows() {
        assert_eq!(NvLz4::new().info().name, "nvcomp-lz4");
        assert_eq!(NvLz4::new().info().class, CodecClass::Dictionary);
        assert_eq!(NvBitcomp::new().info().name, "nvcomp-bitcomp");
        assert_eq!(NvBitcomp::new().info().class, CodecClass::Prediction);
        assert!(NvLz4::new().info().parallel);
    }
}

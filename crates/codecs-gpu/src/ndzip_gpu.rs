//! ndzip-GPU (Knorr, Thoman & Fahringer, SC 2021; paper §4.4).
//!
//! The pipeline is identical to ndzip-CPU — hypercube decomposition,
//! integer Lorenzo transform, bit transpose, zero-word removal — so this
//! codec reuses those exact kernels from `fcbench-codecs-cpu`. What
//! changes is the schedule: one thread block per hypercube on the
//! simulated GPU, encoded chunks first written to per-cube scratch, then a
//! **parallel prefix sum** over chunk sizes yields the output offsets, and
//! a final pass copies chunks into place. The offsets table is stored in
//! the stream, making decompression fully block-parallel without
//! synchronization (§4.4 insight).
//!
//! Payload: `u32 ncubes | per-cube u64 offset (prefix sums) | u64 body len |
//! cube bodies | border words`.

use fcbench_codecs_cpu::common::effective_dims;
use fcbench_codecs_cpu::common::{push_u32, push_u64, read_u32, read_u64};
use fcbench_codecs_cpu::ndzip::{
    decode_cube, encode_cube, lorenzo_forward, lorenzo_inverse, plan_cubes, words_of, Ndzip,
};
use fcbench_core::{
    AuxTime, CodecClass, CodecInfo, Community, Compressor, DataDesc, Error, FloatData, OpProfile,
    Platform, Precision, PrecisionSupport, Result,
};
use fcbench_gpu_sim::{exclusive_prefix_sum, Dir, Gpu, GpuConfig, TransferLedger};

/// The ndzip-GPU codec.
pub struct NdzipGpu {
    gpu: Gpu,
    last_aux: crate::AuxSlot,
    /// CPU-side geometry helper (cube sides per dimensionality).
    geometry: Ndzip,
}

impl Default for NdzipGpu {
    fn default() -> Self {
        Self::new()
    }
}

impl NdzipGpu {
    pub fn new() -> Self {
        NdzipGpu {
            gpu: Gpu::new(GpuConfig::default()),
            last_aux: crate::AuxSlot::new(),
            geometry: Ndzip::new(),
        }
    }
}

impl Compressor for NdzipGpu {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "ndzip-gpu",
            year: 2021,
            community: Community::Hpc,
            class: CodecClass::Lorenzo,
            platform: Platform::Gpu,
            parallel: true,
            precisions: PrecisionSupport::Both,
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let ledger = TransferLedger::new();
        ledger.record(self.gpu.config(), Dir::HostToDevice, data.bytes().len());
        let desc = data.desc();
        let elem_bits = desc.precision.bits();
        let esize = desc.precision.bytes();
        let dims = effective_dims(desc);
        let sides = self.geometry.cube_sides(dims.len());
        let plan = plan_cubes(&dims, &sides);
        let words = words_of(data);

        // One thread block per hypercube writes to private scratch.
        let items: Vec<Vec<u64>> = plan
            .cube_indices
            .iter()
            .map(|idxs| idxs.iter().map(|&i| words[i]).collect())
            .collect();
        let sides_ref = &plan.sides;
        let (scratch, _stats) = self.gpu.launch(items, |ctx, mut cube| {
            ctx.report_instructions(cube.len() as u64 * 6);
            lorenzo_forward(&mut cube, sides_ref, elem_bits as u32);
            let mut out = Vec::with_capacity(cube.len() * esize);
            encode_cube(&cube, elem_bits, &mut out);
            out
        });

        // Parallel prefix sum over chunk sizes -> output offsets.
        let sizes: Vec<u64> = scratch.iter().map(|s| s.len() as u64).collect();
        let offsets = exclusive_prefix_sum(&sizes);
        let body_len: u64 = sizes.iter().sum();

        out.clear();
        push_u32(out, scratch.len() as u32);
        for &off in &offsets {
            push_u64(out, off);
        }
        push_u64(out, body_len);
        for s in &scratch {
            out.extend_from_slice(s);
        }
        for &i in &plan.border {
            out.extend_from_slice(&words[i].to_le_bytes()[..esize]);
        }

        ledger.record(self.gpu.config(), Dir::DeviceToHost, out.len());
        self.last_aux.store(&ledger);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        // The descriptor is untrusted (FCB1 frames and the runner hand it
        // over unchecked): reject implausible output claims before anything
        // is reserved against them.
        fcbench_core::blocks::check_decode_claim(desc, payload.len())?;
        let ledger = TransferLedger::new();
        ledger.record(self.gpu.config(), Dir::HostToDevice, payload.len());
        let elem_bits = desc.precision.bits();
        let esize = desc.precision.bytes();
        let dims = effective_dims(desc);
        let sides = self.geometry.cube_sides(dims.len());
        let plan = plan_cubes(&dims, &sides);
        let cube_elems: usize = sides.iter().product();

        let mut pos = 0usize;
        let ncubes = read_u32(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("ndzip-gpu: missing cube count".into()))?
            as usize;
        if ncubes != plan.cube_indices.len() {
            return Err(Error::Corrupt("ndzip-gpu: cube count mismatch".into()));
        }
        let mut offsets = Vec::with_capacity(ncubes);
        for _ in 0..ncubes {
            offsets.push(
                read_u64(payload, &mut pos)
                    .ok_or_else(|| Error::Corrupt("ndzip-gpu: offsets truncated".into()))?
                    as usize,
            );
        }
        let body_len = read_u64(payload, &mut pos)
            .ok_or_else(|| Error::Corrupt("ndzip-gpu: missing body length".into()))?
            as usize;
        let body = payload
            .get(pos..pos + body_len)
            .ok_or_else(|| Error::Corrupt("ndzip-gpu: body truncated".into()))?;
        pos += body_len;

        // Offsets must be monotone within the body.
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return Err(Error::Corrupt("ndzip-gpu: offsets not monotone".into()));
            }
        }
        if let Some(&first) = offsets.first() {
            if first != 0 {
                return Err(Error::Corrupt("ndzip-gpu: first offset not zero".into()));
            }
        }

        // Block-parallel decode: each cube knows its slice via the offsets.
        let items: Vec<&[u8]> = (0..ncubes)
            .map(|k| {
                let start = offsets[k];
                let end = if k + 1 < ncubes {
                    offsets[k + 1]
                } else {
                    body_len
                };
                &body[start..end.min(body_len)]
            })
            .collect();
        let sides_ref = &plan.sides;
        let (results, _stats) = self.gpu.launch(items, |_ctx, slice| -> Result<Vec<u64>> {
            let mut local = 0usize;
            let mut cube = decode_cube(slice, &mut local, cube_elems, elem_bits)?;
            if local != slice.len() {
                return Err(Error::Corrupt(
                    "ndzip-gpu: cube slice has trailing bytes".into(),
                ));
            }
            lorenzo_inverse(&mut cube, sides_ref, elem_bits as u32);
            Ok(cube)
        });

        let mut out_words = vec![0u64; desc.elements()];
        for (k, r) in results.into_iter().enumerate() {
            let cube = r?;
            for (&i, &w) in plan.cube_indices[k].iter().zip(cube.iter()) {
                out_words[i] = w;
            }
        }
        for &i in &plan.border {
            let raw = payload
                .get(pos..pos + esize)
                .ok_or_else(|| Error::Corrupt("ndzip-gpu: border truncated".into()))?;
            let mut le = [0u8; 8];
            le[..esize].copy_from_slice(raw);
            out_words[i] = u64::from_le_bytes(le);
            pos += esize;
        }
        if pos != payload.len() {
            return Err(Error::Corrupt("ndzip-gpu: trailing bytes".into()));
        }

        out.refill(desc, |bytes| {
            bytes.reserve(desc.byte_len());
            match desc.precision {
                Precision::Double => {
                    for w in out_words {
                        bytes.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Precision::Single => {
                    for w in out_words {
                        bytes.extend_from_slice(&(w as u32).to_le_bytes());
                    }
                }
            }
            Ok(())
        })?;
        ledger.record(self.gpu.config(), Dir::DeviceToHost, out.bytes().len());
        self.last_aux.store(&ledger);
        Ok(())
    }

    fn last_aux_time(&self) -> AuxTime {
        self.last_aux.get()
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        // Same dominant kernel as ndzip-CPU (transpose + compact), higher
        // parallelism. Compute-bound (§6.3).
        let n = desc.elements() as u64;
        let bits = (desc.byte_len() * 8) as u64;
        Some(OpProfile {
            int_ops: 3 * bits + 3 * n,
            float_ops: 0,
            bytes_moved: 3 * desc.byte_len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Domain;

    fn round_trip(data: &FloatData) -> usize {
        let codec = NdzipGpu::new();
        let c = codec.compress(data).unwrap();
        let back = codec.decompress(&c, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        c.len()
    }

    #[test]
    fn matches_cpu_ratio_exactly() {
        // Same pipeline => same compressed sizes (modulo container format).
        let vals: Vec<f32> = (0..32 * 32 * 32)
            .map(|i| ((i % 4096) as f32 * 0.125).floor())
            .collect();
        let data = FloatData::from_f32(&vals, vec![32, 32, 32], Domain::Hpc).unwrap();
        let gpu_size = round_trip(&data);
        let cpu = fcbench_codecs_cpu::Ndzip::new();
        let cpu_size = cpu.compress(&data).unwrap().len();
        let diff = (gpu_size as i64 - cpu_size as i64).abs();
        assert!(
            diff < 1024,
            "GPU ({gpu_size}) and CPU ({cpu_size}) should compress near-identically"
        );
    }

    #[test]
    fn grids_of_all_dimensionalities() {
        let vals1: Vec<f64> = (0..9000).map(|i| (i / 5) as f64).collect();
        round_trip(&FloatData::from_f64(&vals1, vec![9000], Domain::Hpc).unwrap());
        let vals2: Vec<f64> = (0..128 * 72).map(|i| (i % 128) as f64).collect();
        round_trip(&FloatData::from_f64(&vals2, vec![72, 128], Domain::Hpc).unwrap());
        let vals3: Vec<f32> = (0..20 * 18 * 17).map(|i| i as f32).collect();
        round_trip(&FloatData::from_f32(&vals3, vec![20, 18, 17], Domain::Hpc).unwrap());
    }

    #[test]
    fn special_values() {
        let mut vals = vec![2.5f64; 4096];
        vals[17] = f64::NAN;
        vals[400] = f64::INFINITY;
        vals[4000] = -0.0;
        let data = FloatData::from_f64(&vals, vec![4096], Domain::Hpc).unwrap();
        round_trip(&data);
    }

    #[test]
    fn aux_time_modelled() {
        let codec = NdzipGpu::new();
        let vals: Vec<f64> = (0..8192).map(|i| i as f64).collect();
        let data = FloatData::from_f64(&vals, vec![8192], Domain::Hpc).unwrap();
        let _ = codec.compress(&data).unwrap();
        let aux = codec.last_aux_time();
        assert!(aux.h2d_seconds > 0.0 && aux.d2h_seconds > 0.0);
    }

    #[test]
    fn corruption_rejected() {
        let codec = NdzipGpu::new();
        let vals: Vec<f64> = (0..8192).map(|i| (i * 7 % 997) as f64).collect();
        let data = FloatData::from_f64(&vals, vec![8192], Domain::Hpc).unwrap();
        let c = codec.compress(&data).unwrap();
        assert!(codec.decompress(&c[..10], data.desc()).is_err());
        assert!(codec.decompress(&c[..c.len() - 2], data.desc()).is_err());
        let mut extra = c.clone();
        extra.push(0xEE);
        assert!(codec.decompress(&extra, data.desc()).is_err());
    }

    #[test]
    fn info_matches_table1() {
        let info = NdzipGpu::new().info();
        assert_eq!(info.name, "ndzip-gpu");
        assert_eq!(info.platform, Platform::Gpu);
        assert_eq!(info.class, CodecClass::Lorenzo);
    }
}

//! # fcbench
//!
//! Umbrella crate for **FCBench-rs** — a pure-Rust reproduction of
//! *"FCBench: Cross-Domain Benchmarking of Lossless Compression for
//! Floating-Point Data"* (VLDB 2024, arXiv:2312.10301).
//!
//! Re-exports every subsystem crate under one roof so examples, integration
//! tests, and downstream users have a single dependency:
//!
//! - [`core`] — data model, `Compressor` trait, metrics, run matrix
//! - [`entropy`] — bit I/O, LZ4, LZ77, Huffman, range & arithmetic coders
//! - [`cpu`] — fpzip, SPDP, BUFF, Gorilla, Chimp, pFPC, bitshuffle, ndzip
//! - [`gpu_sim`] — SIMT execution simulator
//! - [`gpu`] — GFC, MPC, nv-lz4, nv-bitcomp, ndzip-GPU on the simulator
//! - [`dzip`] — GRU + arithmetic-coding neural compressor
//! - [`datasets`] — the 33 synthetic FCBench datasets
//! - [`dbsim`] — simulated in-memory database (container, dataframe, scans)
//! - [`stats`] — Friedman/Nemenyi/Mann-Whitney statistics
//! - [`roofline`] — roofline performance model
//! - [`serve`] — the `FCS1` network compression service over the shared
//!   worker-pool engine
//!
//! ## Quickstart
//!
//! ```
//! use fcbench::core::{Compressor, FloatData, Domain};
//! use fcbench::cpu::Gorilla;
//!
//! let values: Vec<f64> = (0..1024).map(|i| 20.0 + (i as f64 * 0.01).sin()).collect();
//! let data = FloatData::from_f64(&values, vec![values.len()], Domain::TimeSeries).unwrap();
//!
//! let codec = Gorilla::new();
//! let compressed = codec.compress(&data).unwrap();
//! let restored = codec.decompress(&compressed, data.desc()).unwrap();
//! assert_eq!(restored.bytes(), data.bytes());
//! assert!(compressed.len() < data.bytes().len());
//! ```

#![forbid(unsafe_code)]

pub use fcbench_codecs_cpu as cpu;
pub use fcbench_codecs_gpu as gpu;
pub use fcbench_core as core;
pub use fcbench_datasets as datasets;
pub use fcbench_dbsim as dbsim;
pub use fcbench_dzip as dzip;
pub use fcbench_entropy as entropy;
pub use fcbench_gpu_sim as gpu_sim;
pub use fcbench_roofline as roofline;
pub use fcbench_serve as serve;
pub use fcbench_stats as stats;

//! `fcbench-serve` integration: many concurrent loopback clients sharing
//! ONE warm `WorkerPool` engine — byte-exact compress→decompress round
//! trips across all 14 registered codecs, no deadlock even on a nearly
//! starved pool — and hostile inputs (garbage handshake, truncated
//! streams, petabyte-claiming records) that fail their request with a
//! typed error while the server keeps serving everyone else.

use fcbench::core::pool::{PoolConfig, WorkerPool};
use fcbench::core::{Domain, Error, FloatData};
use fcbench::serve::{protocol, Client, RunningServer, ServeConfig, Server};
use fcbench_bench::codecs::paper_registry;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

/// Benign two-decimal telemetry every codec (including BUFF) accepts.
fn decimal_data(n: usize, phase: f64) -> FloatData {
    let vals: Vec<f64> = (0..n)
        .map(|i| ((20.0 + (i as f64 * 0.37 + phase).sin()) * 100.0).round() / 100.0)
        .collect();
    FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).unwrap()
}

fn start_server(pool: PoolConfig, config: ServeConfig) -> RunningServer {
    let registry = Arc::new(paper_registry());
    let pool = Arc::new(WorkerPool::new(pool));
    Server::bind("127.0.0.1:0", registry, pool, config)
        .expect("bind loopback")
        .spawn()
}

#[test]
fn concurrent_clients_share_one_engine_with_byte_exact_roundtrips() {
    // A deliberately tight engine: 2 workers, 4 job slots, while 14
    // clients stream concurrently. The per-connection in-flight cap plus
    // the drain-own-oldest discipline must keep this deadlock-free.
    let running = start_server(
        PoolConfig::with_threads(2).queue_depth(4),
        ServeConfig {
            max_inflight_per_conn: 2,
            ..ServeConfig::default()
        },
    );
    let addr = running.addr();

    let names = paper_registry().names();
    assert_eq!(names.len(), 14);
    let workers: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let name = name.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let data = decimal_data(700 + 13 * i, i as f64);
                // Mixed verbs on every connection: compress, then
                // decompress the result, then sanity-query the catalogue.
                let compressed = client
                    .compress(&name, &data, 64)
                    .unwrap_or_else(|e| panic!("{name}: compress: {e}"));
                let restored = client
                    .decompress(&compressed)
                    .unwrap_or_else(|e| panic!("{name}: decompress: {e}"));
                assert_eq!(restored.bytes(), data.bytes(), "{name}: byte-exact");
                assert_eq!(restored.desc(), data.desc(), "{name}: descriptor");
                let listed = client.list_codecs().expect("list");
                assert!(listed.iter().any(|l| l.name == name), "{name} listed");
                data.bytes().len()
            })
        })
        .collect();
    let mut raw_bytes = 0usize;
    for w in workers {
        raw_bytes += w.join().expect("client thread");
    }

    let stats = running.stats();
    // 14 compress + 14 decompress + 14 list = 42 successful requests.
    assert_eq!(stats.requests_ok, 42);
    assert_eq!(stats.requests_failed, 0);
    assert_eq!(stats.connections_accepted, 14);
    assert!(
        stats.bytes_in as usize > raw_bytes,
        "bytes_in {} must exceed the raw payloads {raw_bytes}",
        stats.bytes_in
    );
    assert!(stats.bytes_out > 0);
    // Every codec served exactly one compress and one decompress.
    for (name, count) in &stats.per_codec {
        assert_eq!(*count, 2, "{name} request count");
    }
    running.shutdown().expect("graceful shutdown");
}

#[test]
fn eight_clients_hammer_one_codec_on_a_starved_pool() {
    // All clients on the same thread-scalable codec, saturating a 1-thread
    // 2-slot engine from 8 directions with several round trips each.
    let running = start_server(
        PoolConfig::with_threads(1).queue_depth(2),
        ServeConfig {
            max_inflight_per_conn: 1,
            ..ServeConfig::default()
        },
    );
    let addr = running.addr();
    let workers: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..3 {
                    let data = decimal_data(400 + 31 * i + round, (i + round) as f64);
                    let restored = client
                        .roundtrip("chimp128", &data, 32)
                        .unwrap_or_else(|e| panic!("client {i} round {round}: {e}"));
                    assert_eq!(restored.bytes(), data.bytes(), "client {i} round {round}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let stats = running.stats();
    assert_eq!(stats.requests_ok, 8 * 3 * 2);
    running.shutdown().expect("graceful shutdown");
}

#[test]
fn hostile_inputs_fail_the_request_not_the_server() {
    let running = start_server(
        PoolConfig::with_threads(2),
        ServeConfig {
            max_request_bytes: 1 << 20,
            ..ServeConfig::default()
        },
    );
    let addr = running.addr();
    let data = decimal_data(500, 0.0);

    // 1. Garbage handshake: a typed protocol error, that connection only.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(b"GARBAG").expect("write garbage hello");
        let err = protocol::read_reply(&mut raw).expect_err("garbage magic must fail");
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    // 2. Unknown codec: the typed registry error crosses the wire with the
    //    available-name listing, and the SAME connection keeps serving.
    {
        let mut client = Client::connect(addr).expect("connect");
        let err = client
            .compress("zstd-22", &data, 64)
            .expect_err("unknown codec must fail");
        match &err {
            Error::UnknownCodec {
                requested,
                available,
            } => {
                assert_eq!(requested, "zstd-22");
                assert_eq!(available.len(), 14);
                assert!(available.iter().any(|n| n == "gorilla"));
            }
            other => panic!("expected UnknownCodec, got {other:?}"),
        }
        let compressed = client
            .compress("gorilla", &data, 64)
            .expect("same connection serves the next request");
        assert_eq!(
            client.decompress(&compressed).unwrap().bytes(),
            data.bytes()
        );
    }

    // 2b. An oversized-but-honest request: the handshake advertised the
    //     server's cap, so the client refuses locally with the typed error
    //     instead of streaming a body the server would cut off — and the
    //     connection stays usable.
    {
        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(client.server_max_request_bytes(), 1 << 20);
        let big = decimal_data(200_000, 0.0); // 1.6 MB > the 1 MiB cap
        let err = client
            .compress("gorilla", &big, 4096)
            .expect_err("oversized request must fail");
        assert!(matches!(err, Error::Unsupported(_)), "got {err:?}");
        let restored = client.roundtrip("gorilla", &data, 64).unwrap();
        assert_eq!(restored.bytes(), data.bytes());
    }

    // 3. Petabyte-claiming COMPRESS record: 2^50 doubles claimed. The
    //    server must refuse before reserving anything; the connection
    //    closes (the body cannot be skipped) but the server lives on.
    {
        let mut client = Client::connect(addr).expect("connect");
        let huge = fcbench::core::DataDesc::new(
            fcbench::core::Precision::Double,
            vec![1usize << 50],
            Domain::Hpc,
        )
        .unwrap();
        let mut req = vec![protocol::VERB_COMPRESS];
        protocol::encode_name("gorilla", &mut req).unwrap();
        protocol::encode_desc(&huge, &mut req).unwrap();
        req.extend_from_slice(&64u64.to_le_bytes());
        let err = client.send_raw(&req).expect_err("petabyte claim must fail");
        assert!(matches!(err, Error::Unsupported(_)), "got {err:?}");
    }

    // 4. Petabyte-claiming DECOMPRESS length prefix.
    {
        let mut client = Client::connect(addr).expect("connect");
        let mut req = vec![protocol::VERB_DECOMPRESS];
        req.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = client.send_raw(&req).expect_err("absurd length must fail");
        assert!(matches!(err, Error::Unsupported(_)), "got {err:?}");
    }

    // 5. FCB3 stream truncated mid-payload: typed error, same connection
    //    then completes a real request (the body was length-prefixed, so
    //    framing held).
    {
        let mut client = Client::connect(addr).expect("connect");
        let compressed = client.compress("gorilla", &data, 64).expect("compress");
        let cut = &compressed[..compressed.len() - 7];
        let err = client
            .decompress(cut)
            .expect_err("truncated stream must fail");
        assert!(
            matches!(err, Error::Corrupt(_) | Error::Io(_)),
            "got {err:?}"
        );
        let restored = client
            .decompress(&compressed)
            .expect("same connection serves the intact stream");
        assert_eq!(restored.bytes(), data.bytes());
    }

    // 6. FCB3 stream whose prologue claims a huge decoded size from a tiny
    //    body: refused by the whole-stream claim gate, connection survives.
    {
        let mut client = Client::connect(addr).expect("connect");
        let huge = fcbench::core::DataDesc::new(
            fcbench::core::Precision::Double,
            vec![1usize << 40],
            Domain::Hpc,
        )
        .unwrap();
        let prologue = fcbench::core::frame::encode_stream_header("gorilla", &huge, 64).unwrap();
        let err = client
            .decompress(&prologue)
            .expect_err("huge decode claim must fail");
        assert!(matches!(err, Error::Unsupported(_)), "got {err:?}");
        let restored = client.roundtrip("chimp128", &data, 64).unwrap();
        assert_eq!(restored.bytes(), data.bytes());
    }

    // After all that abuse the server still serves fresh connections, and
    // the failures were counted.
    let mut client = Client::connect(addr).expect("connect");
    let restored = client.roundtrip("gorilla", &data, 64).expect("roundtrip");
    assert_eq!(restored.bytes(), data.bytes());
    let stats = client.stats().expect("stats");
    assert!(
        stats.requests_failed >= 6,
        "failed requests counted: {}",
        stats.requests_failed
    );
    assert!(stats.requests_ok >= 8);
    drop(client);
    running.shutdown().expect("graceful shutdown");
}

#[test]
fn mid_body_disconnects_count_as_failed_requests_and_server_survives() {
    let running = start_server(PoolConfig::with_threads(1), ServeConfig::default());
    let addr = running.addr();
    let before = running.stats().requests_failed;
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&protocol::client_hello()).expect("hello");
        protocol::read_reply(&mut raw).expect("handshake reply");
        let data = decimal_data(512, 0.0);
        let mut req = vec![protocol::VERB_COMPRESS];
        protocol::encode_name("gorilla", &mut req).unwrap();
        protocol::encode_desc(data.desc(), &mut req).unwrap();
        req.extend_from_slice(&64u64.to_le_bytes());
        req.extend_from_slice(&data.bytes()[..100]); // partial body...
        raw.write_all(&req).expect("partial request");
    } // ...then vanish mid-body.
      // The handler hits EOF mid-body and must book the in-flight request
      // as failed (it consumed server work and got no reply).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while running.stats().requests_failed == before {
        assert!(
            std::time::Instant::now() < deadline,
            "mid-body disconnect was never counted as a failed request"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // And the server keeps serving fresh connections.
    let mut client = Client::connect(addr).expect("connect");
    let data = decimal_data(300, 1.0);
    let restored = client.roundtrip("gorilla", &data, 64).expect("roundtrip");
    assert_eq!(restored.bytes(), data.bytes());
    drop(client);
    running.shutdown().expect("graceful shutdown");
}

#[test]
fn own_compress_output_decompresses_back_despite_expansion() {
    // Incompressible input makes codecs EXPAND: the compressed stream is
    // larger than the raw bytes that produced it. The DECOMPRESS gate
    // must leave headroom over max_request_bytes (protocol::stream_cap)
    // or a server could emit streams it then refuses to take back.
    let raw_cap = 64 * 1024;
    let running = start_server(
        PoolConfig::with_threads(2),
        ServeConfig {
            max_request_bytes: raw_cap,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(running.addr()).expect("connect");
    // Mantissa-noise doubles (LCG bits, exponent pinned to stay finite)
    // that XOR-based codecs cannot shrink; raw size == the cap exactly.
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let vals: Vec<f64> = (0..raw_cap / 8)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            f64::from_bits((state & !(0x7FFu64 << 52)) | (1023u64 << 52))
        })
        .collect();
    let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::Hpc).unwrap();
    let wire = client.compress("gorilla", &data, 64).expect("compress");
    assert!(
        wire.len() > raw_cap,
        "test premise: the stream must expand past the raw cap (got {} <= {raw_cap})",
        wire.len()
    );
    let restored = client.decompress(&wire).expect(
        "a stream this server produced from an in-cap request must decompress back through it",
    );
    assert_eq!(restored.bytes(), data.bytes());

    // Worst legal framing overhead: block_elems = 1 puts an 8-byte record
    // length on every 8-byte block — roughly 2x before the codec even
    // runs. Still the server's own output, still must round-trip.
    let wire = client
        .compress("gorilla", &data, 1)
        .expect("single-element blocks are legal");
    assert!(wire.len() > 2 * raw_cap, "premise: ~2x framing expansion");
    let restored = client
        .decompress(&wire)
        .expect("worst-case block size must still round-trip");
    assert_eq!(restored.bytes(), data.bytes());
    drop(client);
    running.shutdown().expect("graceful shutdown");
}

#[test]
fn compressed_streams_interoperate_with_local_frame_io() {
    // What the server returns is a plain FCB3 stream: a local FrameReader
    // decodes it, and a locally written stream decompresses server-side.
    let running = start_server(PoolConfig::with_threads(2), ServeConfig::default());
    let addr = running.addr();
    let registry = paper_registry();
    let gorilla = registry.get("gorilla").expect("registered codec");
    let data = decimal_data(900, 1.5);

    let mut client = Client::connect(addr).expect("connect");
    let served = client.compress("gorilla", &data, 128).expect("compress");
    let mut reader =
        fcbench::core::FrameReader::new(&served[..], Arc::clone(&gorilla), None).expect("reader");
    let mut local = Vec::new();
    while let Some(block) = reader.next_block().expect("local decode") {
        local.extend_from_slice(block);
    }
    assert_eq!(local, data.bytes());

    let mut writer = fcbench::core::FrameWriter::new(
        Vec::new(),
        Arc::clone(&gorilla),
        data.desc().clone(),
        128,
        None,
    )
    .expect("writer");
    writer.write(data.bytes()).expect("write");
    let local_stream = writer.finish().expect("finish");
    let restored = client.decompress(&local_stream).expect("server decode");
    assert_eq!(restored.bytes(), data.bytes());

    drop(client);
    running.shutdown().expect("graceful shutdown");
}

#[test]
fn stats_v2_carries_layered_latency_histograms_over_the_wire() {
    let running = start_server(PoolConfig::with_threads(2), ServeConfig::default());
    let addr = running.addr();

    let mut client = Client::connect(addr).expect("connect");
    let data = decimal_data(600, 0.3);
    for _ in 0..4 {
        let restored = client.roundtrip("gorilla", &data, 64).expect("roundtrip");
        assert_eq!(restored.bytes(), data.bytes());
    }
    let v1 = client.stats().expect("stats v1");
    let v2 = client.stats_v2().expect("stats v2");

    // The v1 counters and the registry view are the same numbers — one
    // metrics system, two wire forms. (STATS ran before STATS_V2, so the
    // ok-count v2 reports includes the STATS request itself.)
    assert_eq!(v2.counter("serve.requests.ok"), Some(v1.requests_ok + 1));
    assert_eq!(
        v2.counter("serve.requests.codec.gorilla"),
        Some(v1.per_codec.iter().find(|(n, _)| n == "gorilla").unwrap().1)
    );
    assert_eq!(v2.gauge("serve.connections.active"), Some(1));

    // Serve-layer latency histograms crossed the wire with usable
    // quantiles: 4 compress + 4 decompress requests were timed.
    let compress = v2.histogram("serve.request.compress").expect("histogram");
    assert_eq!(compress.count(), 4);
    assert!(compress.p99() >= compress.p50());
    assert!(compress.max() > 0);
    assert_eq!(
        v2.histogram("serve.request.decompress")
            .expect("histogram")
            .count(),
        4
    );
    let codec_hist = v2
        .histogram("serve.request.codec.gorilla")
        .expect("per-codec histogram");
    assert_eq!(codec_hist.count(), 8);

    // Engine metrics from the layers below ride the same body: gorilla is
    // thread-scalable, so its blocks crossed the worker pool.
    assert!(v2.counter("pool.drain.stalls").is_some());
    assert!(v2.histogram("pool.exec").expect("pool.exec").count() > 0);
    assert!(
        v2.histogram("pool.exec.codec.gorilla")
            .expect("per-codec pool histogram")
            .count()
            > 0
    );
    assert!(v2.histogram("pool.queue_wait").expect("queue wait").count() > 0);

    // Phase breakdown sums to less than the verb totals measured around it.
    let engine = v2.histogram("serve.phase.engine").expect("engine phase");
    assert_eq!(engine.count(), 8);

    drop(client);
    running.shutdown().expect("graceful shutdown");
}

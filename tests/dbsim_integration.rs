//! Cross-crate integration of the simulated database with real codecs:
//! container round trips, query correctness over compressed storage, and
//! the block-size effect of Table 10.

use fcbench::core::Compressor;
use fcbench::cpu::{Bitshuffle, Chimp, Gorilla};
use fcbench::dbsim::{
    measure_three_primitives, read_container, write_container, ColumnData, DataFrame,
};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("fcbench-it-{}-{name}", std::process::id()))
}

fn orders_table(rows: usize) -> Vec<ColumnData> {
    let mut x = 0xABCD_EF01u64;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 33) as f64 / (1u64 << 31) as f64
    };
    let price: Vec<f64> = (0..rows)
        .map(|_| ((900.0 + rnd() * 5000.0) * 100.0).round() / 100.0)
        .collect();
    let qty: Vec<f32> = (0..rows)
        .map(|_| (1.0 + rnd() * 49.0).floor() as f32)
        .collect();
    vec![
        ColumnData::from_f64("price", &price),
        ColumnData::from_f32("quantity", &qty),
    ]
}

#[test]
fn container_round_trips_with_real_codecs() {
    for codec in [
        Box::new(Gorilla::new()) as Box<dyn Compressor>,
        Box::new(Chimp::new()),
        Box::new(Bitshuffle::lz4()),
    ] {
        let path = tmp(codec.info().name);
        let cols = orders_table(5000);
        write_container(&path, codec.as_ref(), &cols, 512).expect("write");
        let read = read_container(&path).expect("read");
        assert!(read.is_clean(), "freshly written container must be clean");
        let table = read.table;
        assert_eq!(table.codec_name, codec.info().name);
        for (orig, comp) in cols.iter().zip(table.columns.iter()) {
            let decoded = comp.decode(codec.as_ref()).expect("decode column");
            assert_eq!(decoded.bytes, orig.bytes, "column {}", orig.name);
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn queries_on_compressed_storage_match_plain_scans() {
    let path = tmp("query");
    let cols = orders_table(20_000);
    // Plain answer first.
    let price_vals: Vec<f64> = cols[0]
        .bytes
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
        .collect();
    let expected = price_vals.iter().filter(|&&v| v <= 2000.0).count();

    let codec = Chimp::new();
    write_container(&path, &codec, &cols, 1024).expect("write");
    let table = read_container(&path).expect("read").table;
    let decoded: Vec<ColumnData> = table
        .columns
        .iter()
        .map(|c| c.decode(&codec).expect("decode"))
        .collect();
    let df = DataFrame::from_columns(decoded).expect("dataframe");
    let price = df.column("price").expect("price column");
    assert_eq!(df.scan_le(price, 2000.0), expected);
    std::fs::remove_file(&path).ok();
}

#[test]
fn larger_pages_compress_better() {
    // Observation 8 on the dbsim path: 64K-ish pages beat 4K-ish pages.
    let cols = orders_table(30_000);
    let raw: u64 = cols.iter().map(|c| c.bytes.len() as u64).sum();
    let codec = Bitshuffle::zzip();

    let small_path = tmp("page-small");
    let small = measure_three_primitives(&small_path, &codec, &cols, 512).expect("small pages");
    let big_path = tmp("page-big");
    let big = measure_three_primitives(&big_path, &codec, &cols, 8192).expect("big pages");
    std::fs::remove_file(&small_path).ok();
    std::fs::remove_file(&big_path).ok();

    let cr_small = raw as f64 / small.compressed_bytes as f64;
    let cr_big = raw as f64 / big.compressed_bytes as f64;
    assert!(
        cr_big >= cr_small,
        "64K pages ({cr_big:.3}) should not lose to 4K pages ({cr_small:.3})"
    );
    assert_eq!(
        small.scan_checksum, big.scan_checksum,
        "same data, same query answers"
    );
}

#[test]
fn three_primitives_are_all_positive_and_reproducible() {
    let path = tmp("prims");
    let cols = orders_table(10_000);
    let codec = Gorilla::new();
    let a = measure_three_primitives(&path, &codec, &cols, 2048).expect("run A");
    let b = measure_three_primitives(&path, &codec, &cols, 2048).expect("run B");
    assert_eq!(
        a.compressed_bytes, b.compressed_bytes,
        "deterministic compression"
    );
    assert_eq!(a.scan_checksum, b.scan_checksum, "deterministic query");
    assert!(a.io_seconds >= 0.0 && a.decode_seconds > 0.0 && a.query_seconds > 0.0);
    std::fs::remove_file(&path).ok();
}

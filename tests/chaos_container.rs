//! Chaos testing for FCDB2 container writes: every seeded fault plan
//! injected into the writer's sink — short writes, interrupts, wouldblock,
//! delays, and hard errors at exact byte offsets — must end in a typed
//! error (never a panic or hang), and the bytes that did reach the sink
//! must recover through `parse_container` to the last commit point with
//! the **exact** dropped-record count a reference walk of the framing
//! predicts. This composes the `fp1:` fault harness with the exhaustive
//! truncation suite in `tests/container_recovery.rs`: a faulted write is
//! just a truncation the writer didn't choose.

use fcbench::core::fault::{FaultPlan, FaultyIo};
use fcbench::core::stream::take_record;
use fcbench::core::Precision;
use fcbench::cpu::Gorilla;
use fcbench::dbsim::{parse_container, ChunkExec, ColumnData, ContainerWriter, RecoveryOutcome};
use proptest::prelude::*;

// FCDB2 framing tags and locator shape, fixed by the on-disk format.
const TAG_COMMIT: u8 = 3;
const LOCATOR_BYTES: usize = 16;

fn column(name: &str, n: usize, phase: f32) -> ColumnData {
    let vals: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31 + phase).sin()).collect();
    ColumnData::from_f32(name, &vals)
}

fn columns() -> Vec<ColumnData> {
    vec![
        column("pressure", 600, 0.0),
        column("humidity", 500, 1.0),
        column("wind", 400, 2.0),
        column("temp", 300, 3.0),
    ]
}

/// Drive the standard multi-commit write sequence through a sink wrapped
/// in `FaultyIo`, returning whatever bytes reached the sink and the
/// writer's final verdict. The sink buffer outlives the writer even when
/// a fault kills it mid-record — exactly the crash shape recovery exists
/// for.
fn write_through(plan: FaultPlan) -> (Vec<u8>, fcbench::core::Result<()>) {
    let codec = Gorilla::new();
    let cols = columns();
    let mut sink = Vec::new();
    let result = (|| {
        let faulty = FaultyIo::new(&mut sink, plan);
        let mut w = ContainerWriter::new(faulty, ChunkExec::Inline(&codec))?;
        for col in &cols {
            w.begin_column(&col.name, Precision::Single, 64)?;
            w.write(&col.bytes)?;
            w.commit()?;
        }
        w.finish()?;
        Ok(())
    })();
    (sink, result)
}

/// The intact reference bytes: the same write sequence with no faults.
fn reference_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let (bytes, result) = write_through(FaultPlan::benign());
        result.expect("benign plan writes cleanly");
        bytes
    })
}

/// One framing span of the intact file: a record, or a commit locator.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: usize,
    end: usize,
    tag: u8,
    is_locator: bool,
}

/// Map every record and locator span of the intact container body.
fn span_map(bytes: &[u8], body_start: usize) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut pos = body_start;
    while pos < bytes.len() {
        let rec = take_record(bytes, pos).expect("intact file parses");
        spans.push(Span {
            start: pos,
            end: rec.end,
            tag: rec.tag,
            is_locator: false,
        });
        pos = rec.end;
        if rec.tag == TAG_COMMIT {
            spans.push(Span {
                start: pos,
                end: pos + LOCATOR_BYTES,
                tag: 0,
                is_locator: true,
            });
            pos += LOCATOR_BYTES;
        }
    }
    assert_eq!(pos, bytes.len(), "intact file is fully spanned");
    spans
}

/// Prologue length: magic, name length byte, name, crc.
fn prologue_end(bytes: &[u8]) -> usize {
    assert_eq!(&bytes[..4], b"FCD2");
    4 + 1 + bytes[4] as usize + 4
}

/// Structural fingerprint of a parsed table: (name, rows, chunks) per
/// column, for comparing a recovered read against the clean read at the
/// same commit point.
type Fingerprint = Vec<(String, usize, Vec<Vec<u8>>)>;

fn fingerprint(read: &fcbench::dbsim::ContainerRead) -> Fingerprint {
    read.table
        .columns
        .iter()
        .map(|c| (c.name.clone(), c.rows, c.chunks.clone()))
        .collect()
}

/// Reference tables at each commit locator end of the intact file.
fn commit_tables() -> Vec<(usize, Fingerprint)> {
    let bytes = reference_bytes();
    let spans = span_map(bytes, prologue_end(bytes));
    spans
        .iter()
        .filter(|s| s.is_locator)
        .map(|s| {
            let read = parse_container(&bytes[..s.end]).expect("commit prefix parses");
            assert_eq!(read.outcome, RecoveryOutcome::Clean);
            (s.end, fingerprint(&read))
        })
        .collect()
}

/// When a chaos case fails, surface the replayable `fp1:` seed both in the
/// failure message and — if the CI harness asked for it — in a seed file
/// it can upload as an artifact.
fn note_seed(plan: &FaultPlan) {
    if let Ok(path) = std::env::var("FCBENCH_CHAOS_SEED_OUT") {
        if !path.is_empty() {
            let _ = std::fs::write(path, plan.seed_string());
        }
    }
}

/// The core assertion: a container prefix of `cut` bytes either rejects a
/// torn prologue or recovers to the last commit point with the exact
/// dropped-record count the reference walk predicts.
fn assert_recovers_exactly(cut: usize, ctx: &str) {
    let bytes = reference_bytes();
    let body = prologue_end(bytes);
    if cut < body {
        assert!(
            parse_container(&bytes[..cut]).is_err(),
            "{ctx}: torn prologue at cut {cut} must be a typed error"
        );
        return;
    }

    // Reference walk over the intact span map, stopping at `cut`.
    let spans = span_map(bytes, body);
    let mut dropped = 0u64;
    let mut last_commit_end: Option<usize> = None;
    let mut clean = false;
    let mut torn = false;
    for s in &spans {
        if s.is_locator {
            if s.end <= cut {
                clean = s.end == cut;
            }
            continue;
        }
        if s.end <= cut {
            if s.tag == TAG_COMMIT {
                dropped = 0;
                last_commit_end = Some(s.end);
            } else {
                dropped += 1;
            }
        } else {
            torn = s.start < cut; // partial tail record
            break;
        }
    }
    dropped += u64::from(torn);

    let read = parse_container(&bytes[..cut])
        .unwrap_or_else(|e| panic!("{ctx}: recovery at cut {cut} must not error: {e}"));
    let expected_table = last_commit_end
        .map(|end| {
            commit_tables()
                .iter()
                .find(|(loc_end, _)| end < *loc_end)
                .expect("commit has a table")
                .1
                .clone()
        })
        .unwrap_or_default();
    assert_eq!(
        fingerprint(&read),
        expected_table,
        "{ctx}: cut {cut} must read back the last committed table"
    );
    let expected = if clean {
        RecoveryOutcome::Clean
    } else {
        RecoveryOutcome::Recovered {
            dropped_records: dropped,
        }
    };
    assert_eq!(read.outcome, expected, "{ctx}: outcome at cut {cut}");
}

/// Run one seeded chaos case end to end and assert every guarantee.
fn chaos_case(seed: u64) {
    let plan = FaultPlan::from_seed(seed);
    note_seed(&plan);
    let reference = reference_bytes();
    let (sink, result) = write_through(plan.clone());

    // Faults can only truncate the byte stream, never corrupt it: what
    // reached the sink is always an exact prefix of the intact file.
    assert!(
        sink.len() <= reference.len(),
        "{plan}: sink may not outgrow the intact file"
    );
    assert_eq!(
        &sink[..],
        &reference[..sink.len()],
        "{plan}: sink must be an exact prefix of the intact file"
    );

    // An Err result is typed by construction: it came back through
    // `Result`. Recovery of the prefix is asserted below either way.
    if result.is_ok() {
        assert_eq!(
            sink.len(),
            reference.len(),
            "{plan}: a write that reported success must have landed every byte"
        );
    }
    assert_recovers_exactly(sink.len(), &plan.seed_string());
}

/// A deterministic sweep of 256 seeded plans — the issue's acceptance
/// floor — independent of any `PROPTEST_CASES` override.
#[test]
fn deterministic_sweep_of_256_fault_plans() {
    for seed in 0..256u64 {
        chaos_case(seed);
    }
}

/// Benign plans are fully transparent: the container lands clean and the
/// whole table reads back.
#[test]
fn benign_plans_write_clean_containers() {
    let plan = FaultPlan::benign();
    assert!(plan.is_benign());
    let (sink, result) = write_through(plan);
    result.expect("benign write succeeds");
    let read = parse_container(&sink).expect("clean parse");
    assert_eq!(read.outcome, RecoveryOutcome::Clean);
    assert_eq!(read.table.columns.len(), columns().len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Randomized fault plans over the whole seed space: the writer may
    /// fail at any byte, but the sink always recovers to the last commit
    /// with an exact accounting of what was lost.
    #[test]
    fn any_seeded_fault_plan_recovers_to_the_last_commit(seed in any::<u64>()) {
        chaos_case(seed);
    }

    /// Composition with the truncation suite: a faulted write *followed by*
    /// a crash-style truncation of the surviving bytes still recovers with
    /// exact counts — fault injection and torn tails stack.
    #[test]
    fn faulted_writes_compose_with_truncation(seed in any::<u64>(), frac in 0.0f64..=1.0) {
        let plan = FaultPlan::from_seed(seed);
        note_seed(&plan);
        let (sink, _) = write_through(plan.clone());
        let cut = ((sink.len() as f64) * frac) as usize;
        let cut = cut.min(sink.len());
        assert_recovers_exactly(cut, &format!("{} then cut", plan.seed_string()));
    }
}

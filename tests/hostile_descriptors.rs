//! Codec-level hostile-descriptor hardening: a descriptor claiming
//! petabytes of output paired with a tiny payload must be rejected by
//! `decompress_into` **before** anything is reserved against the claim —
//! on the direct codec path (what a hostile `FCB1` frame or runner cell
//! hands over), through the worker pool, and through the framed decoder.
//! If any codec reserved first, these cases would abort the process on the
//! failed multi-terabyte allocation instead of returning a typed error.

use fcbench::core::pool::{PoolConfig, WorkerPool};
use fcbench::core::{DataDesc, Domain, FloatData, Precision};
use fcbench_bench::codecs::paper_registry;
use proptest::prelude::*;
use std::sync::Arc;

/// A descriptor claiming 2^40 .. 2^50 elements (terabytes to petabytes),
/// in one of the shapes a hostile frame could legally encode.
fn hostile_desc() -> impl Strategy<Value = DataDesc> {
    (40u32..=50, any::<bool>(), any::<bool>(), 1usize..=4096).prop_map(
        |(log2, double, multidim, factor)| {
            let precision = if double {
                Precision::Double
            } else {
                Precision::Single
            };
            let elems = 1usize << log2;
            let dims = if multidim {
                vec![
                    elems / factor.next_power_of_two().min(elems),
                    factor.next_power_of_two(),
                ]
            } else {
                vec![elems]
            };
            DataDesc::new(precision, dims, Domain::Hpc).expect("claim fits the address space")
        },
    )
}

/// Small payloads, as a hostile frame would carry.
fn tiny_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..64)
}

proptest! {
    /// Every registered codec rejects a petabyte claim on the direct path.
    #[test]
    fn every_codec_rejects_petabyte_claims_directly(
        desc in hostile_desc(),
        payload in tiny_payload(),
    ) {
        let registry = paper_registry();
        for entry in registry.iter() {
            let codec = entry.codec();
            let mut out = FloatData::scratch();
            let r = codec.decompress_into(&payload, &desc, &mut out);
            prop_assert!(
                r.is_err(),
                "{} accepted a {}-byte payload claiming {} bytes",
                entry.name(),
                payload.len(),
                desc.byte_len()
            );
        }
    }

    /// The worker pool surfaces the same rejection as a typed error.
    #[test]
    fn pool_workers_reject_petabyte_claims(
        desc in hostile_desc(),
        payload in tiny_payload(),
    ) {
        let registry = paper_registry();
        let pool = WorkerPool::new(PoolConfig::with_threads(2));
        for name in ["gorilla", "chimp128", "spdp"] {
            let codec: Arc<_> = registry.get(name).expect("registered codec");
            let ticket = pool.submit_decompress(&codec, &desc, &payload).expect("submit");
            prop_assert!(ticket.collect(|_| ()).is_err(), "{name} accepted a hostile claim");
        }
    }
}

/// Deterministic spot-check (fast, runs even with PROPTEST_CASES=1): the
/// exact 2^50-double (8 PB) claim from the ISSUE against every codec.
#[test]
fn eight_petabyte_claim_is_rejected_by_all_fourteen_codecs() {
    let desc = DataDesc::new(Precision::Double, vec![1usize << 50], Domain::Database).unwrap();
    let payload = [0xA5u8; 24];
    let registry = paper_registry();
    let mut rejected = 0;
    for entry in registry.iter() {
        let mut out = FloatData::scratch();
        assert!(
            entry
                .codec()
                .decompress_into(&payload, &desc, &mut out)
                .is_err(),
            "{} must reject the 8 PB claim",
            entry.name()
        );
        rejected += 1;
    }
    assert_eq!(rejected, 14);
}

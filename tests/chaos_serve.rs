//! End-to-end resilience of the `FCS1` serve path under injected faults
//! and hostile peers: seeded `fp1:` fault plans between client and server
//! (every outcome a typed error or a correct round trip, the server keeps
//! serving), deadlines that turn silent peers into typed errors instead of
//! hangs (client read/write timeouts, server handshake and idle reaping,
//! reply-write deadlines), and load shedding that refuses excess data
//! requests with `ERR_BUSY` + retry-after — which the client's
//! `RetryPolicy` then turns into an eventual success, all visible on the
//! `serve.requests.shed` / `serve.timeouts.*` / `client.retries` counters
//! and consistent between the v1 `STATS` verb and `STATS_V2`.

use fcbench::core::fault::{FaultPlan, FaultyIo, Rng};
use fcbench::core::pool::{PoolConfig, WorkerPool};
use fcbench::core::telemetry::Registry;
use fcbench::core::{Domain, Error, FloatData};
use fcbench::serve::{
    protocol, Client, ClientConfig, RetryPolicy, RunningServer, ServeConfig, Server,
};
use fcbench_bench::codecs::paper_registry;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Benign two-decimal telemetry every codec accepts.
fn decimal_data(n: usize, phase: f64) -> FloatData {
    let vals: Vec<f64> = (0..n)
        .map(|i| ((20.0 + (i as f64 * 0.37 + phase).sin()) * 100.0).round() / 100.0)
        .collect();
    FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).unwrap()
}

fn start_server(pool: PoolConfig, config: ServeConfig) -> RunningServer {
    let registry = Arc::new(paper_registry());
    let pool = Arc::new(WorkerPool::new(pool));
    Server::bind("127.0.0.1:0", registry, pool, config)
        .expect("bind loopback")
        .spawn()
}

/// Poll a telemetry counter until it reaches `want` or the budget runs out.
fn wait_for_counter(registry: &Arc<Registry>, name: &str, want: u64, budget: Duration) -> u64 {
    let started = Instant::now();
    loop {
        let got = registry.counter(name).get();
        if got >= want || started.elapsed() >= budget {
            return got;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Surface the replayable seed for CI artifact upload on failure.
fn note_seed(plan: &FaultPlan) {
    if let Ok(path) = std::env::var("FCBENCH_CHAOS_SEED_OUT") {
        if !path.is_empty() {
            let _ = std::fs::write(path, plan.seed_string());
        }
    }
}

// ---------------------------------------------------------------------------
// Client deadlines: a silent or dead peer is a typed error, never a hang.
// ---------------------------------------------------------------------------

/// Satellite regression: the client installs its socket deadlines, so a
/// server that accepts and then never speaks fails the handshake with a
/// typed error within the configured read timeout.
#[test]
fn silent_server_times_out_instead_of_hanging() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        // Accept and hold the socket open, reading nothing, saying nothing.
        let sock = listener.accept().map(|(s, _)| s);
        std::thread::sleep(Duration::from_secs(4));
        drop(sock);
    });

    let config = ClientConfig {
        read_timeout: Some(Duration::from_millis(200)),
        ..ClientConfig::default()
    };
    let started = Instant::now();
    let result = Client::connect_with(addr, config);
    let elapsed = started.elapsed();
    match result {
        Ok(_) => panic!("handshake against a mute server cannot succeed"),
        Err(Error::Io(_)) => {}
        Err(other) => panic!("expected a typed I/O timeout, got: {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(3),
        "timed out in {elapsed:?}, not within the configured deadline's order"
    );
    hold.join().expect("holder thread");
}

// ---------------------------------------------------------------------------
// Server-side reaping: handshake and idle deadlines.
// ---------------------------------------------------------------------------

/// A socket that connects and never sends its `HELLO` is reaped on the
/// (short) handshake deadline — counted on `serve.timeouts.idle` — instead
/// of pinning a handler thread for the full idle window.
#[test]
fn handshake_deadline_reaps_preconnect_sockets() {
    let running = start_server(
        PoolConfig::with_threads(1),
        ServeConfig {
            handshake_deadline: Duration::from_millis(120),
            idle_poll: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );
    let handle = running.handle();

    let stream = TcpStream::connect(running.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("deadline");
    // Send nothing. The server must close on us.
    let mut probe = [0u8; 1];
    let got = (&stream).read(&mut probe).expect("clean EOF, not an error");
    assert_eq!(got, 0, "server hangs up on a handshake that never comes");
    let reaped = wait_for_counter(
        handle.telemetry(),
        "serve.timeouts.idle",
        1,
        Duration::from_secs(2),
    );
    assert!(reaped >= 1, "reap is counted on serve.timeouts.idle");
    running.shutdown().expect("shutdown");
}

/// A handshaken connection that goes quiet at a request boundary is reaped
/// after the idle window.
#[test]
fn idle_connections_are_reaped_at_the_boundary() {
    let running = start_server(
        PoolConfig::with_threads(1),
        ServeConfig {
            idle_timeout: Duration::from_millis(150),
            idle_poll: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );
    let handle = running.handle();

    let mut stream = TcpStream::connect(running.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("deadline");
    stream
        .write_all(&protocol::client_hello())
        .expect("send hello");
    protocol::read_reply(&mut stream).expect("hello reply");

    // Now say nothing. The keep-alive window expires and the server
    // closes cleanly (nothing is half-sent at a boundary).
    let mut probe = [0u8; 1];
    let got = (&stream).read(&mut probe).expect("clean EOF, not an error");
    assert_eq!(got, 0, "idle connection reaped");
    let reaped = wait_for_counter(
        handle.telemetry(),
        "serve.timeouts.idle",
        1,
        Duration::from_secs(2),
    );
    assert!(reaped >= 1, "reap is counted on serve.timeouts.idle");
    running.shutdown().expect("shutdown");
}

/// A peer that sends a request and then refuses to read its (large) reply
/// trips the write deadline: `serve.timeouts.write` counts it and the
/// connection dies instead of blocking a handler forever.
#[test]
fn unresponsive_reader_trips_the_write_deadline() {
    let running = start_server(
        PoolConfig::with_threads(1),
        ServeConfig {
            write_deadline: Duration::from_millis(200),
            idle_poll: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );
    let handle = running.handle();

    // Incompressible payload: the reply is at least as large as the body,
    // far past what loopback socket buffers absorb.
    let n = 1 << 20;
    let mut rng = Rng::new(0xD00D);
    let vals: Vec<f64> = (0..n)
        .map(|_| f64::from_bits(rng.next_u64() | 0x3FF0_0000_0000_0000))
        .collect();
    let data = FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).expect("data");

    let mut stream = TcpStream::connect(running.addr()).expect("connect");
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .expect("client write deadline");
    stream
        .write_all(&protocol::client_hello())
        .expect("send hello");
    protocol::read_reply(&mut stream).expect("hello reply");

    let mut req = vec![protocol::VERB_COMPRESS];
    protocol::encode_name("gorilla", &mut req).expect("name");
    protocol::encode_desc(data.desc(), &mut req).expect("desc");
    req.extend_from_slice(&(1u64 << 16).to_le_bytes());
    stream.write_all(&req).expect("header");
    stream.write_all(data.bytes()).expect("body");
    stream.flush().expect("flush");
    // ... and never read the reply.

    let tripped = wait_for_counter(
        handle.telemetry(),
        "serve.timeouts.write",
        1,
        Duration::from_secs(10),
    );
    assert!(
        tripped >= 1,
        "stuck reply write counted on serve.timeouts.write"
    );
    drop(stream);
    running.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------------
// Load shedding + client retries.
// ---------------------------------------------------------------------------

/// Hold one `COMPRESS` in flight by stalling mid-body on a raw socket.
/// Returns the socket (dropping it releases the slot early).
fn stalled_compress(addr: SocketAddr) -> TcpStream {
    let data = decimal_data(100, 0.0);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&protocol::client_hello())
        .expect("send hello");
    protocol::read_reply(&mut stream).expect("hello reply");
    let mut req = vec![protocol::VERB_COMPRESS];
    protocol::encode_name("gorilla", &mut req).expect("name");
    protocol::encode_desc(data.desc(), &mut req).expect("desc");
    req.extend_from_slice(&64u64.to_le_bytes());
    stream.write_all(&req).expect("header");
    // Eight bytes of an 800-byte body, then silence: the handler is now
    // parked in its body read, holding an admission slot.
    stream.write_all(&data.bytes()[..8]).expect("partial body");
    stream.flush().expect("flush");
    stream
}

/// The overload smoke from the issue: past the admission threshold the
/// server sheds with a typed `ERR_BUSY` carrying its retry-after hint, a
/// retrying client eventually gets served, and every leg of the story is
/// on the counters — `serve.requests.shed`, `serve.timeouts.read` (the
/// staller's demise), `client.retries` — with v1 `STATS` and `STATS_V2`
/// telling one consistent story.
#[test]
fn overload_sheds_busy_and_retrying_clients_recover() {
    let running = start_server(
        PoolConfig::with_threads(1).queue_depth(2),
        ServeConfig {
            shed_max_inflight: 1,
            busy_retry_after: Duration::from_millis(30),
            stall_limit: Duration::from_millis(1500),
            idle_poll: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );
    let addr = running.addr();
    let handle = running.handle();

    // Saturate the single admission slot.
    let staller = stalled_compress(addr);
    std::thread::sleep(Duration::from_millis(150));

    // A plain client (no retries) sees the typed busy refusal, hint intact.
    let mut plain = Client::connect(addr).expect("connect");
    let data = decimal_data(300, 1.0);
    match plain.compress("gorilla", &data, 64) {
        Err(Error::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 30),
        other => panic!("expected ERR_BUSY while saturated, got {other:?}"),
    }

    // A retrying client rides out the saturation: the staller is reaped on
    // its stall limit (counting serve.timeouts.read), the slot frees, and
    // a later attempt succeeds.
    let client_telemetry = Arc::new(Registry::new());
    let config = ClientConfig {
        retry: RetryPolicy {
            max_retries: 12,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(250),
            jitter_seed: 7,
        },
        telemetry: Some(Arc::clone(&client_telemetry)),
        ..ClientConfig::default()
    };
    let mut retrying = Client::connect_with(addr, config).expect("connect");
    let compressed = retrying
        .compress("gorilla", &data, 64)
        .expect("retries outlast the saturation");
    let restored = retrying.decompress(&compressed).expect("roundtrip");
    assert_eq!(restored.bytes(), data.bytes(), "byte-exact after retries");

    assert!(retrying.retries() >= 1, "at least one retry happened");
    assert_eq!(
        client_telemetry.counter("client.retries").get(),
        retrying.retries(),
        "client.retries mirrors the local count"
    );

    let shed = handle.telemetry().counter("serve.requests.shed").get();
    assert!(
        shed >= 2,
        "both clients were shed at least once, got {shed}"
    );
    let read_timeouts = wait_for_counter(
        handle.telemetry(),
        "serve.timeouts.read",
        1,
        Duration::from_secs(3),
    );
    assert!(read_timeouts >= 1, "the staller was reaped mid-body");

    // v1 STATS and STATS_V2 agree: the shed refusals are failures in both
    // expositions, and the ok counts line up modulo the stats requests
    // themselves (each counts itself served before its reply).
    let v2 = retrying.stats_v2().expect("stats v2");
    assert_eq!(v2.counter("serve.requests.shed"), Some(shed));
    let v1 = retrying.stats().expect("stats v1");
    assert_eq!(
        Some(v1.requests_failed),
        v2.counter("serve.requests.failed"),
        "no failures happened between the two snapshots"
    );
    assert!(v1.requests_failed >= shed, "every shed is a failed request");
    let ok_v2 = v2.counter("serve.requests.ok").expect("ok counter");
    assert!(
        v1.requests_ok >= ok_v2 && v1.requests_ok <= ok_v2 + 2,
        "ok counts agree modulo the stats verbs themselves \
         (v1 {}, v2 {ok_v2})",
        v1.requests_ok
    );

    drop(staller);
    drop(plain);
    drop(retrying);
    running.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------------
// Seeded fault plans over full serve round trips.
// ---------------------------------------------------------------------------

/// The chaos server every proxied case talks to, bound once.
fn chaos_server() -> SocketAddr {
    static SERVER: std::sync::OnceLock<RunningServer> = std::sync::OnceLock::new();
    SERVER
        .get_or_init(|| {
            start_server(
                PoolConfig::with_threads(2),
                ServeConfig {
                    // Keep worst-case cases bounded: a desynced peer is
                    // dropped after a short stall, not 30s.
                    stall_limit: Duration::from_secs(2),
                    idle_poll: Duration::from_millis(20),
                    ..ServeConfig::default()
                },
            )
        })
        .addr()
}

/// Copy bytes from `src` to `dst` until EOF or a fault, then shut both
/// underlying sockets down so neither peer can block on the dead path.
fn pump(mut src: impl Read, mut dst: impl Write, a: TcpStream, b: TcpStream) {
    let mut buf = [0u8; 512];
    loop {
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if dst.write_all(&buf[..n]).and_then(|()| dst.flush()).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// A one-connection TCP proxy that forwards through `FaultyIo` in both
/// directions: the request path runs under `plan`, the reply path under a
/// plan derived from the next seed. Any injected fault tears the whole
/// path down — from the client's side, indistinguishable from a crashed
/// or partitioned server.
fn fault_proxy(upstream: SocketAddr, plan: FaultPlan) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        let Ok((client, _)) = listener.accept() else {
            return;
        };
        let Ok(server) = TcpStream::connect(upstream) else {
            let _ = client.shutdown(Shutdown::Both);
            return;
        };
        let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
            return;
        };
        let (Ok(c3), Ok(s3)) = (client.try_clone(), server.try_clone()) else {
            return;
        };
        let reply_plan = FaultPlan::from_seed(plan.seed().wrapping_add(1));
        std::thread::spawn(move || {
            pump(client, FaultyIo::new(server, plan), c2, s2);
        });
        std::thread::spawn(move || {
            pump(
                FaultyIo::new(s3.try_clone().expect("clone"), reply_plan),
                c3.try_clone().expect("clone"),
                c3,
                s3,
            );
        });
    });
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole chaos property on the serve path: under **any** seeded
    /// fault plan injected into the connection, a round trip either
    /// succeeds byte-exactly or fails with a typed error — never a hang,
    /// never a panic — and the server is still serving fresh connections
    /// immediately afterwards.
    #[test]
    fn seeded_fault_plans_over_serve_roundtrips(seed in any::<u64>()) {
        let plan = FaultPlan::from_seed(seed);
        note_seed(&plan);
        let upstream = chaos_server();
        let proxy = fault_proxy(upstream, plan.clone());

        let data = decimal_data(160, (seed % 17) as f64);
        let config = ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(2)),
            ..ClientConfig::default()
        };
        let outcome = Client::connect_with(proxy, config).and_then(|mut c| {
            let compressed = c.compress("gorilla", &data, 64)?;
            c.decompress(&compressed)
        });
        // An Err outcome is typed by construction: it came back through
        // `Result`. Only a success has more to prove.
        if let Ok(restored) = outcome {
            prop_assert_eq!(
                restored.bytes(),
                data.bytes(),
                "{}: a successful round trip must be byte-exact",
                plan.seed_string()
            );
        }

        // The server shrugged the fault off: a direct connection serves.
        let mut direct = Client::connect(upstream)
            .unwrap_or_else(|e| panic!("{}: server must keep accepting: {e}", plan.seed_string()));
        let compressed = direct
            .compress("gorilla", &data, 64)
            .unwrap_or_else(|e| panic!("{}: server must keep serving: {e}", plan.seed_string()));
        let restored = direct
            .decompress(&compressed)
            .unwrap_or_else(|e| panic!("{}: server must keep serving: {e}", plan.seed_string()));
        prop_assert_eq!(restored.bytes(), data.bytes());
    }
}

//! Cross-crate integration: every codec round-trips every domain's data
//! bit-exactly, through both raw payloads and self-describing frames.

use fcbench::core::{frame, Compressor, Domain, FloatData};
use fcbench::datasets::{catalog, generate};

/// All 14 paper methods, consumed through the shared registry.
fn all_codecs() -> Vec<Box<dyn Compressor>> {
    fcbench_bench::codecs::paper_registry()
        .codecs()
        .map(|c| Box::new(c.clone()) as Box<dyn Compressor>)
        .collect()
}

/// One dataset per domain, small enough for a fast test run.
fn sample_datasets() -> Vec<FloatData> {
    [
        "msg-bt",
        "phone-gyro",
        "acs-wht",
        "tpcDS-store",
        "astro-mhd",
    ]
    .iter()
    .map(|name| {
        let spec = catalog()
            .into_iter()
            .find(|s| s.name == *name)
            .expect("catalog name");
        generate(&spec, 16_384)
    })
    .collect()
}

#[test]
fn every_codec_round_trips_every_domain() {
    let datasets = sample_datasets();
    for codec in all_codecs() {
        for data in &datasets {
            let payload = match codec.compress(data) {
                Ok(p) => p,
                // Legitimate refusals (BUFF on non-decimal data) are fine;
                // they are the paper's "-" cells.
                Err(_) => continue,
            };
            let back = codec
                .decompress(&payload, data.desc())
                .unwrap_or_else(|e| panic!("{}: decompress failed: {e}", codec.info().name));
            assert_eq!(
                back.bytes(),
                data.bytes(),
                "{}: round trip must be bit-exact",
                codec.info().name
            );
        }
    }
}

#[test]
fn framed_streams_are_self_describing() {
    let datasets = sample_datasets();
    for codec in all_codecs() {
        let data = &datasets[0];
        let framed = frame::compress_framed(codec.as_ref(), data).expect("frame");
        let decoded = frame::decode_frame(&framed).expect("decode frame");
        assert_eq!(decoded.codec, codec.info().name);
        assert_eq!(&decoded.desc, data.desc());
        let back = frame::decompress_framed(codec.as_ref(), &framed).expect("unframe");
        assert_eq!(back.bytes(), data.bytes());
    }
}

#[test]
fn wrong_codec_refuses_foreign_frames() {
    let data = sample_datasets().remove(0);
    let registry = fcbench_bench::codecs::paper_registry();
    let gorilla = registry.get("gorilla").expect("registered");
    let chimp = registry.get("chimp128").expect("registered");
    let framed = frame::compress_framed(&gorilla, &data).expect("frame");
    assert!(frame::decompress_framed(&chimp, &framed).is_err());
}

#[test]
fn special_value_gauntlet_across_all_codecs() {
    // NaN payloads, signed zeros, denormals, infinities, and extremes in
    // one buffer; every codec must reproduce the exact bit patterns or
    // refuse cleanly.
    let specials = [
        0.0f64,
        -0.0,
        f64::NAN,
        f64::from_bits(0x7FF8_0000_0000_0001), // NaN with payload
        f64::INFINITY,
        f64::NEG_INFINITY,
        5e-324,
        -5e-324,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        1.0,
    ];
    // Pad to exercise chunked paths.
    let mut values = Vec::new();
    for _ in 0..700 {
        values.extend_from_slice(&specials);
    }
    let data = FloatData::from_f64(&values, vec![values.len()], Domain::Hpc).unwrap();
    for codec in all_codecs() {
        match codec.compress(&data) {
            Ok(payload) => {
                let back = codec.decompress(&payload, data.desc()).expect("decompress");
                assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
            }
            Err(_) => {
                // BUFF rejects non-finite input — the documented behaviour.
                assert_eq!(codec.info().name, "buff");
            }
        }
    }
}

#[test]
fn truncated_payloads_never_panic() {
    let data = sample_datasets().remove(0);
    for codec in all_codecs() {
        let Ok(payload) = codec.compress(&data) else {
            continue;
        };
        for cut in [0, 1, 4, payload.len() / 2, payload.len().saturating_sub(1)] {
            // Must return an error (or, for self-delimiting tails, a wrong
            // but well-formed result is impossible given the length checks)
            // — never panic.
            let _ = codec.decompress(&payload[..cut], data.desc());
        }
    }
}

//! Property-based tests: arbitrary float vectors must round-trip through
//! every codec bit-exactly, and malformed payloads must error, not panic.

use fcbench::core::{Compressor, DataDesc, Domain, FloatData, Precision};
use proptest::prelude::*;

fn all_codecs() -> Vec<Box<dyn Compressor>> {
    use fcbench::cpu::{Bitshuffle, Chimp, Fpzip, Gorilla, Ndzip, Pfpc, Spdp};
    use fcbench::gpu::{Gfc, Mpc, NvBitcomp, NvLz4};
    vec![
        Box::new(Pfpc::with_threads(2)),
        Box::new(Spdp::new()),
        Box::new(Fpzip::new()),
        Box::new(Bitshuffle::lz4()),
        Box::new(Bitshuffle::zzip()),
        Box::new(Ndzip::with_threads(2)),
        Box::new(Gorilla::new()),
        Box::new(Chimp::new()),
        Box::new(Gfc::with_config(Default::default(), usize::MAX)),
        Box::new(Mpc::new()),
        Box::new(NvLz4::new()),
        Box::new(NvBitcomp::new()),
    ]
}

/// Any f64 bit pattern, including NaNs with payloads and denormals.
fn any_f64_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn any_f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// Structured-ish doubles: a random walk with occasional jumps, closer to
/// the benchmark's data than raw bit noise.
fn walk_f64() -> impl Strategy<Value = Vec<f64>> {
    (1usize..300, any::<u64>()).prop_map(|(n, seed)| {
        let mut x = seed | 1;
        let mut v = 1000.0f64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v += ((x >> 60) as f64 - 7.5) * 0.25;
                v
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_f64_bits_round_trip(vals in prop::collection::vec(any_f64_bits(), 1..200)) {
        let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::Hpc).unwrap();
        for codec in all_codecs() {
            let payload = codec.compress(&data).expect("compress never fails on finite-size input");
            let back = codec.decompress(&payload, data.desc()).expect("decompress");
            prop_assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
        }
    }

    #[test]
    fn arbitrary_f32_bits_round_trip(vals in prop::collection::vec(any_f32_bits(), 1..200)) {
        let data = FloatData::from_f32(&vals, vec![vals.len()], Domain::Observation).unwrap();
        for codec in all_codecs() {
            let payload = codec.compress(&data).expect("compress");
            let back = codec.decompress(&payload, data.desc()).expect("decompress");
            prop_assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
        }
    }

    #[test]
    fn structured_walks_round_trip(vals in walk_f64()) {
        let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::TimeSeries).unwrap();
        for codec in all_codecs() {
            let payload = codec.compress(&data).expect("compress");
            let back = codec.decompress(&payload, data.desc()).expect("decompress");
            prop_assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
        }
    }

    #[test]
    fn random_payload_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let desc = DataDesc::new(Precision::Double, vec![16], Domain::Hpc).unwrap();
        for codec in all_codecs() {
            // Garbage in => error or (for store-like formats) some output,
            // but never a panic or wrong-size success.
            if let Ok(out) = codec.decompress(&bytes, &desc) {
                prop_assert_eq!(out.bytes().len(), desc.byte_len());
            }
        }
    }

    #[test]
    fn entropy_substrates_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let c = fcbench::entropy::lz4::compress(&bytes);
        prop_assert_eq!(fcbench::entropy::lz4::decompress(&c, bytes.len()).unwrap(), bytes.clone());

        let c = fcbench::entropy::zzip::compress(&bytes);
        prop_assert_eq!(fcbench::entropy::zzip::decompress(&c).unwrap(), bytes.clone());

        let c = fcbench::entropy::huffman::encode(&bytes);
        prop_assert_eq!(fcbench::entropy::huffman::decode(&c).unwrap(), bytes);
    }

    #[test]
    fn multidim_shapes_round_trip(
        a in 1usize..12,
        b in 1usize..12,
        c in 1usize..12,
        seed in any::<u64>(),
    ) {
        let n = a * b * c;
        let mut x = seed | 1;
        let vals: Vec<f32> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 40) as f32 * 0.001
            })
            .collect();
        let data = FloatData::from_f32(&vals, vec![a, b, c], Domain::Hpc).unwrap();
        for codec in [
            Box::new(fcbench::cpu::Fpzip::new()) as Box<dyn Compressor>,
            Box::new(fcbench::cpu::Ndzip::with_threads(2)),
            Box::new(fcbench::gpu::NdzipGpu::new()),
            Box::new(fcbench::gpu::Mpc::new()),
        ] {
            let payload = codec.compress(&data).expect("compress");
            let back = codec.decompress(&payload, data.desc()).expect("decompress");
            prop_assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
        }
    }
}

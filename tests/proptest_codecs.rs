//! Property-based tests: arbitrary float vectors must round-trip through
//! every codec bit-exactly, and malformed payloads must error, not panic.

use fcbench::core::{Compressor, DataDesc, Domain, FloatData, Precision};
use proptest::prelude::*;

/// The proptest codec set, drawn from the registry: BUFF is excluded
/// (it legitimately rejects arbitrary bit patterns) and ndzip-gpu is
/// excluded for run time, as before; the thread-scalable CPU codecs run
/// with 2 workers to exercise their parallel paths.
fn all_codecs() -> Vec<Box<dyn Compressor>> {
    let registry = fcbench_bench::codecs::paper_registry();
    let mut out: Vec<Box<dyn Compressor>> = Vec::new();
    for entry in registry.iter() {
        match entry.name() {
            "buff" | "ndzip-gpu" => {}
            "pfpc" | "ndzip-cpu" => out.push(registry.scaled(entry.name(), 2).expect("scalable")),
            _ => out.push(Box::new(entry.codec().clone())),
        }
    }
    out
}

/// Any f64 bit pattern, including NaNs with payloads and denormals.
fn any_f64_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn any_f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// Structured-ish doubles: a random walk with occasional jumps, closer to
/// the benchmark's data than raw bit noise.
fn walk_f64() -> impl Strategy<Value = Vec<f64>> {
    (1usize..300, any::<u64>()).prop_map(|(n, seed)| {
        let mut x = seed | 1;
        let mut v = 1000.0f64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v += ((x >> 60) as f64 - 7.5) * 0.25;
                v
            })
            .collect()
    })
}

/// The IEEE-754 landmines: NaNs (quiet, signalling-style payloads, negative),
/// signed zeros, subnormals at both ends of the range, infinities, and the
/// finite extremes. Codecs must either round-trip these bit-exactly or
/// return a typed error — never panic, and never "succeed" lossily.
const SPECIAL_F64: [u64; 16] = [
    0x7FF8_0000_0000_0000, // quiet NaN
    0xFFF8_0000_0000_0000, // negative quiet NaN
    0x7FF0_0000_0000_0001, // signalling-style NaN, minimal payload
    0x7FF7_FFFF_FFFF_FFFF, // NaN, maximal payload
    0x0000_0000_0000_0000, // +0.0
    0x8000_0000_0000_0000, // -0.0
    0x0000_0000_0000_0001, // smallest positive subnormal (5e-324)
    0x000F_FFFF_FFFF_FFFF, // largest subnormal
    0x8000_0000_0000_0001, // smallest-magnitude negative subnormal
    0x7FF0_0000_0000_0000, // +inf
    0xFFF0_0000_0000_0000, // -inf
    0x0010_0000_0000_0000, // f64::MIN_POSITIVE (smallest normal)
    0x7FEF_FFFF_FFFF_FFFF, // f64::MAX
    0xFFEF_FFFF_FFFF_FFFF, // f64::MIN
    0x3FF0_0000_0000_0000, // 1.0
    0xBFF0_0000_0000_0000, // -1.0
];

const SPECIAL_F32: [u32; 16] = [
    0x7FC0_0000, // quiet NaN
    0xFFC0_0000, // negative quiet NaN
    0x7F80_0001, // signalling-style NaN, minimal payload
    0x7FBF_FFFF, // NaN, maximal payload
    0x0000_0000, // +0.0
    0x8000_0000, // -0.0
    0x0000_0001, // smallest positive subnormal
    0x007F_FFFF, // largest subnormal
    0x8000_0001, // smallest-magnitude negative subnormal
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
    0x0080_0000, // f32::MIN_POSITIVE
    0x7F7F_FFFF, // f32::MAX
    0xFF7F_FFFF, // f32::MIN
    0x3F80_0000, // 1.0
    0xBF80_0000, // -1.0
];

/// Run one dataset through every registered codec: a successful compress
/// must round-trip bit-exactly; a refusal must be a typed error (enforced by
/// the `Result` type itself — any panic fails the test).
fn assert_roundtrip_or_typed_error(data: &FloatData, context: &str) {
    let registry = fcbench_bench::codecs::paper_registry();
    for codec in registry.codecs() {
        let name = codec.info().name;
        match codec.compress(data) {
            Ok(payload) => {
                let back = codec
                    .decompress(&payload, data.desc())
                    .unwrap_or_else(|e| panic!("{name} on {context}: decompress failed: {e}"));
                assert_eq!(
                    back.bytes(),
                    data.bytes(),
                    "{name} on {context}: lossy round-trip"
                );
            }
            Err(_typed) => {} // refusing the input is allowed; panicking is not
        }
    }
}

#[test]
fn special_f64_values_round_trip_in_every_codec() {
    let vals: Vec<f64> = SPECIAL_F64.iter().copied().map(f64::from_bits).collect();
    let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::Hpc).unwrap();
    assert_roundtrip_or_typed_error(&data, "special f64 palette");
}

#[test]
fn special_f32_values_round_trip_in_every_codec() {
    let vals: Vec<f32> = SPECIAL_F32.iter().copied().map(f32::from_bits).collect();
    let data = FloatData::from_f32(&vals, vec![vals.len()], Domain::Observation).unwrap();
    assert_roundtrip_or_typed_error(&data, "special f32 palette");
}

#[test]
fn length_one_inputs_round_trip_in_every_codec() {
    for bits in SPECIAL_F64 {
        let v = f64::from_bits(bits);
        let data = FloatData::from_f64(&[v], vec![1], Domain::TimeSeries).unwrap();
        assert_roundtrip_or_typed_error(&data, &format!("single f64 {bits:#018x}"));
    }
    for bits in SPECIAL_F32 {
        let v = f32::from_bits(bits);
        let data = FloatData::from_f32(&[v], vec![1], Domain::TimeSeries).unwrap();
        assert_roundtrip_or_typed_error(&data, &format!("single f32 {bits:#010x}"));
    }
}

#[test]
fn empty_inputs_are_typed_construction_errors() {
    // Zero-size arrays are rejected at the container boundary with a typed
    // error, so no codec ever sees an empty buffer.
    assert!(FloatData::from_f64(&[], vec![], Domain::Hpc).is_err());
    assert!(FloatData::from_f64(&[], vec![0], Domain::Hpc).is_err());
    assert!(FloatData::from_f32(&[], vec![0, 4], Domain::Hpc).is_err());
    assert!(DataDesc::new(Precision::Double, vec![], Domain::Hpc).is_err());
    assert!(DataDesc::new(Precision::Single, vec![4, 0], Domain::Hpc).is_err());
}

/// Mix special values into otherwise-random vectors so codec state machines
/// hit NaN/inf/subnormal mid-stream, not just at the head.
fn f64_with_specials() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((any::<u64>(), 0usize..SPECIAL_F64.len() * 3), 1..64).prop_map(|seeds| {
        seeds
            .into_iter()
            .map(|(bits, pick)| match SPECIAL_F64.get(pick) {
                Some(&special) => f64::from_bits(special),
                None => f64::from_bits(bits),
            })
            .collect()
    })
}

fn f32_with_specials() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((any::<u32>(), 0usize..SPECIAL_F32.len() * 3), 1..64).prop_map(|seeds| {
        seeds
            .into_iter()
            .map(|(bits, pick)| match SPECIAL_F32.get(pick) {
                Some(&special) => f32::from_bits(special),
                None => f32::from_bits(bits),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn special_laden_f64_vectors_never_panic(vals in f64_with_specials()) {
        let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::Hpc).unwrap();
        assert_roundtrip_or_typed_error(&data, "special-laden f64 vector");
    }

    #[test]
    fn special_laden_f32_vectors_never_panic(vals in f32_with_specials()) {
        let data = FloatData::from_f32(&vals, vec![vals.len()], Domain::Observation).unwrap();
        assert_roundtrip_or_typed_error(&data, "special-laden f32 vector");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_f64_bits_round_trip(vals in prop::collection::vec(any_f64_bits(), 1..200)) {
        let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::Hpc).unwrap();
        for codec in all_codecs() {
            let payload = codec.compress(&data).expect("compress never fails on finite-size input");
            let back = codec.decompress(&payload, data.desc()).expect("decompress");
            prop_assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
        }
    }

    #[test]
    fn arbitrary_f32_bits_round_trip(vals in prop::collection::vec(any_f32_bits(), 1..200)) {
        let data = FloatData::from_f32(&vals, vec![vals.len()], Domain::Observation).unwrap();
        for codec in all_codecs() {
            let payload = codec.compress(&data).expect("compress");
            let back = codec.decompress(&payload, data.desc()).expect("decompress");
            prop_assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
        }
    }

    #[test]
    fn structured_walks_round_trip(vals in walk_f64()) {
        let data = FloatData::from_f64(&vals, vec![vals.len()], Domain::TimeSeries).unwrap();
        for codec in all_codecs() {
            let payload = codec.compress(&data).expect("compress");
            let back = codec.decompress(&payload, data.desc()).expect("decompress");
            prop_assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
        }
    }

    #[test]
    fn random_payload_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let desc = DataDesc::new(Precision::Double, vec![16], Domain::Hpc).unwrap();
        for codec in all_codecs() {
            // Garbage in => error or (for store-like formats) some output,
            // but never a panic or wrong-size success.
            if let Ok(out) = codec.decompress(&bytes, &desc) {
                prop_assert_eq!(out.bytes().len(), desc.byte_len());
            }
        }
    }

    #[test]
    fn entropy_substrates_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let c = fcbench::entropy::lz4::compress(&bytes);
        prop_assert_eq!(fcbench::entropy::lz4::decompress(&c, bytes.len()).unwrap(), bytes.clone());

        let c = fcbench::entropy::zzip::compress(&bytes);
        prop_assert_eq!(fcbench::entropy::zzip::decompress(&c).unwrap(), bytes.clone());

        let c = fcbench::entropy::huffman::encode(&bytes);
        prop_assert_eq!(fcbench::entropy::huffman::decode(&c).unwrap(), bytes);
    }

    #[test]
    fn multidim_shapes_round_trip(
        a in 1usize..12,
        b in 1usize..12,
        c in 1usize..12,
        seed in any::<u64>(),
    ) {
        let n = a * b * c;
        let mut x = seed | 1;
        let vals: Vec<f32> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 40) as f32 * 0.001
            })
            .collect();
        let data = FloatData::from_f32(&vals, vec![a, b, c], Domain::Hpc).unwrap();
        for codec in [
            Box::new(fcbench::cpu::Fpzip::new()) as Box<dyn Compressor>,
            Box::new(fcbench::cpu::Ndzip::with_threads(2)),
            Box::new(fcbench::gpu::NdzipGpu::new()),
            Box::new(fcbench::gpu::Mpc::new()),
        ] {
            let payload = codec.compress(&data).expect("compress");
            let back = codec.decompress(&payload, data.desc()).expect("decompress");
            prop_assert_eq!(back.bytes(), data.bytes(), "{}", codec.info().name);
        }
    }
}

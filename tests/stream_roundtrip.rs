//! Streaming frame I/O must round-trip byte-exactly for every registered
//! codec across worker-thread counts 1/2/8 and block sizes including the
//! off-by-one sizes around the input length — driven chunk-by-chunk
//! through `FrameWriter`/`FrameReader` so neither side ever holds the
//! whole frame. Plus pool-lifecycle integration: a panicking codec
//! surfaces a typed error mid-stream and the engine keeps serving the
//! remaining codecs.

use fcbench::core::pool::{PoolConfig, WorkerPool};
use fcbench::core::{Domain, Error, FloatData, Pipeline};
use fcbench_bench::codecs::paper_registry;
use std::sync::Arc;

const LEN: usize = 1000;

fn block_sizes() -> [usize; 5] {
    [1, LEN - 1, LEN, LEN + 1, 64 * 1024]
}

const THREADS: [usize; 3] = [1, 2, 8];

/// Benign two-decimal telemetry every codec (including BUFF) accepts.
fn decimal_data() -> FloatData {
    let vals: Vec<f64> = (0..LEN)
        .map(|i| ((20.0 + (i as f64 * 0.37).sin()) * 100.0).round() / 100.0)
        .collect();
    FloatData::from_f64(&vals, vec![LEN], Domain::TimeSeries).unwrap()
}

#[test]
fn streaming_sweep_over_full_registry() {
    let registry = paper_registry();
    let data = decimal_data();
    for entry in registry.iter() {
        for block in block_sizes() {
            for threads in THREADS {
                let pipeline = Pipeline::with_codec(entry.codec().clone())
                    .block_elems(block)
                    .threads(threads);

                // Write in deliberately awkward 313-byte chunks.
                let mut writer = pipeline
                    .frame_writer(data.desc(), Vec::new())
                    .unwrap_or_else(|e| panic!("{}: writer: {e}", entry.name()));
                let mut ok = true;
                for chunk in data.bytes().chunks(313) {
                    if writer.write(chunk).is_err() {
                        // A typed refusal (BUFF would reject non-finite
                        // input; none here) is a "-" cell, not a failure.
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                let stored = writer.finish().unwrap_or_else(|e| {
                    panic!("{} block {block} threads {threads}: {e}", entry.name())
                });

                let mut reader = pipeline
                    .frame_reader(&stored[..])
                    .unwrap_or_else(|e| panic!("{}: reader: {e}", entry.name()));
                assert_eq!(reader.desc(), data.desc());
                assert_eq!(reader.blocks_total(), LEN.div_ceil(block));
                let mut restored = Vec::with_capacity(data.bytes().len());
                loop {
                    match reader.next_block() {
                        Ok(Some(b)) => restored.extend_from_slice(b),
                        Ok(None) => break,
                        Err(e) => {
                            panic!("{} block {block} threads {threads}: {e}", entry.name())
                        }
                    }
                }
                assert_eq!(
                    restored,
                    data.bytes(),
                    "{} block {block} threads {threads}: byte-exact stream round trip",
                    entry.name()
                );
            }
        }
    }
}

#[test]
fn one_shared_engine_serves_every_codec_with_zero_respawns() {
    let registry = paper_registry();
    let data = decimal_data();
    let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(4)));
    for entry in registry.iter() {
        let pipeline =
            Pipeline::with_pool(entry.codec().clone(), Arc::clone(&pool)).block_elems(128);
        let frame = pipeline
            .compress(&data)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name()));
        let back = pipeline.decompress(&frame).unwrap();
        assert_eq!(back.bytes(), data.bytes(), "{}", entry.name());
    }
    // The engine's workers were spawned once for the whole registry.
    assert_eq!(pool.threads_spawned(), 4);
    assert!(pool.jobs_completed() > 0);
}

/// The serving front-end feeds `FrameReader` state straight from untrusted
/// sockets, so a stream cut anywhere — mid-prologue, mid-record-length,
/// mid-payload — must surface a typed error (never a panic or a hang) and
/// fail sticky, on both the inline and the pooled path.
#[test]
fn truncated_streams_from_untrusted_sources_fail_typed() {
    let registry = paper_registry();
    let data = decimal_data();
    let gorilla = registry.get("gorilla").expect("registered codec");
    let pipeline = Pipeline::with_codec(Arc::clone(&gorilla)).block_elems(50);
    let mut writer = pipeline.frame_writer(data.desc(), Vec::new()).unwrap();
    writer.write(data.bytes()).unwrap();
    let stored = writer.finish().unwrap();

    let prologue_len = {
        let mut cursor = &stored[..];
        fcbench::core::frame::decode_stream_header(&mut cursor).unwrap();
        stored.len() - cursor.len()
    };
    let len0 = u64::from_le_bytes(
        stored[prologue_len..prologue_len + 8]
            .try_into()
            .expect("8 bytes"),
    ) as usize;

    let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(2)));
    let cuts = [
        prologue_len + 4,                // mid first record length
        prologue_len + 8,                // record length read, zero payload bytes
        prologue_len + 8 + len0 / 2,     // mid first payload
        prologue_len + 8 + len0 + 3,     // mid second record length
        prologue_len + 8 + len0 + 8 + 1, // mid second payload
    ];
    for cut in cuts {
        assert!(cut < stored.len(), "cut {cut} must truncate the stream");
        for pooled in [false, true] {
            let engine = pooled.then(|| Arc::clone(&pool));
            let mut reader =
                fcbench::core::FrameReader::new(&stored[..cut], Arc::clone(&gorilla), engine)
                    .expect("prologue is intact at these cuts");
            let mut result = Ok(());
            loop {
                match reader.next_block() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            let err = result.expect_err("typed error required");
            assert!(
                matches!(err, Error::Corrupt(_) | Error::Io(_)),
                "cut {cut} pooled {pooled}: got {err:?}"
            );
            // Sticky: later reads refuse instead of yielding blocks out of
            // order (and must never panic on the drained read-ahead).
            assert!(reader.next_block().is_err(), "cut {cut} pooled {pooled}");
        }
    }

    // A record length claiming almost-u64::MAX payload bytes mid-stream is
    // rejected before the reader allocates for it.
    let mut hostile = stored[..prologue_len + 8 + len0].to_vec();
    hostile.extend_from_slice(&u64::MAX.to_le_bytes());
    hostile.extend_from_slice(&[0u8; 32]);
    for pooled in [false, true] {
        let engine = pooled.then(|| Arc::clone(&pool));
        let mut reader =
            fcbench::core::FrameReader::new(&hostile[..], Arc::clone(&gorilla), engine).unwrap();
        let mut result = Ok(());
        loop {
            match reader.next_block() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert!(
            matches!(result, Err(Error::Corrupt(_))),
            "pooled {pooled}: petabyte record claim must be Corrupt, got {result:?}"
        );
    }
}

/// A codec that panics on every call — the worker must catch it, surface a
/// typed error to the stream, and stay alive for the next codec.
struct PanicCodec;

impl fcbench::core::Compressor for PanicCodec {
    fn info(&self) -> fcbench::core::CodecInfo {
        fcbench::core::CodecInfo {
            name: "panicker",
            year: 2024,
            community: fcbench::core::Community::General,
            class: fcbench::core::CodecClass::Delta,
            platform: fcbench::core::Platform::Cpu,
            parallel: false,
            precisions: fcbench::core::PrecisionSupport::Both,
        }
    }
    fn compress_into(&self, _d: &FloatData, _o: &mut Vec<u8>) -> fcbench::core::Result<usize> {
        panic!("deliberate stream panic");
    }
    fn decompress_into(
        &self,
        _p: &[u8],
        _d: &fcbench::core::DataDesc,
        _o: &mut FloatData,
    ) -> fcbench::core::Result<()> {
        panic!("deliberate stream panic");
    }
}

#[test]
fn panicking_codec_mid_stream_is_a_typed_error_and_engine_survives() {
    let data = decimal_data();
    let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(2)));

    let bad = Pipeline::with_pool(Arc::new(PanicCodec), Arc::clone(&pool)).block_elems(100);
    let mut writer = bad.frame_writer(data.desc(), Vec::new()).unwrap();
    let mut err = None;
    for chunk in data.bytes().chunks(512) {
        if let Err(e) = writer.write(chunk) {
            err = Some(e);
            break;
        }
    }
    let err = match err {
        Some(e) => e,
        None => writer.finish().expect_err("panicking codec cannot finish"),
    };
    assert!(matches!(err, Error::WorkerPanic(_)), "got {err:?}");

    // The engine is still healthy: a real codec streams fine afterwards.
    let registry = paper_registry();
    let gorilla = Pipeline::with_pool(
        registry.get("gorilla").expect("registered codec"),
        Arc::clone(&pool),
    )
    .block_elems(100);
    let mut writer = gorilla.frame_writer(data.desc(), Vec::new()).unwrap();
    writer.write(data.bytes()).unwrap();
    let stored = writer.finish().unwrap();
    let mut reader = gorilla.frame_reader(&stored[..]).unwrap();
    let mut out = FloatData::scratch();
    reader.read_to_end(&mut out).unwrap();
    assert_eq!(out.bytes(), data.bytes());
    assert_eq!(pool.threads_spawned(), 2);
}

//! FCDB2 crash-recovery hardening: a container truncated at **any** byte
//! must recover to the last valid commit point with a typed outcome and an
//! exact dropped-record count — and a committed directory making petabyte
//! claims against a tiny file must be a typed error before anything is
//! reserved for it (the container-level mirror of
//! `tests/hostile_descriptors.rs`).

use fcbench::core::pool::{PoolConfig, WorkerPool};
use fcbench::core::stream::{crc32, put_record, take_record};
use fcbench::core::{Compressor, Precision};
use fcbench::cpu::Gorilla;
use fcbench::dbsim::{
    legacy, parse_container, read_container, upgrade_container, ChunkExec, ColumnData,
    ContainerWriter, RecoveryOutcome,
};
use proptest::prelude::*;
use std::sync::Arc;

// The FCDB2 framing tags and locator shape, fixed by the on-disk format
// (see crates/dbsim/src/container.rs module docs).
const TAG_CHUNK: u8 = 2;
const TAG_COMMIT: u8 = 3;
const LOCATOR_BYTES: usize = 16;

fn column(name: &str, n: usize, phase: f32) -> ColumnData {
    let vals: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31 + phase).sin()).collect();
    ColumnData::from_f32(name, &vals)
}

/// Build a small three-column container in memory with a commit after
/// every column (so three commit points), returning its bytes.
fn three_commit_container() -> Vec<u8> {
    let codec = Gorilla::new();
    let mut w = ContainerWriter::new(Vec::new(), ChunkExec::Inline(&codec)).expect("prologue");
    for (i, col) in [
        column("a", 60, 0.0),
        column("b", 60, 1.0),
        column("c", 40, 2.0),
    ]
    .iter()
    .enumerate()
    {
        w.begin_column(&col.name, Precision::Single, 16)
            .expect("column");
        w.write(&col.bytes).expect("write");
        assert!(w.uncommitted_records() > 0, "column {i} emitted records");
        w.commit().expect("commit");
        assert_eq!(w.uncommitted_records(), 0);
    }
    w.finish().expect("finish")
}

/// One framing span of the intact file: a record, or a commit locator.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: usize,
    end: usize,
    tag: u8,
    is_locator: bool,
}

/// Map every record and locator span of an intact container body.
fn span_map(bytes: &[u8], body_start: usize) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut pos = body_start;
    while pos < bytes.len() {
        let rec = take_record(bytes, pos).expect("intact file parses");
        spans.push(Span {
            start: pos,
            end: rec.end,
            tag: rec.tag,
            is_locator: false,
        });
        pos = rec.end;
        if rec.tag == TAG_COMMIT {
            spans.push(Span {
                start: pos,
                end: pos + LOCATOR_BYTES,
                tag: 0,
                is_locator: true,
            });
            pos += LOCATOR_BYTES;
        }
    }
    assert_eq!(pos, bytes.len(), "intact file is fully spanned");
    spans
}

/// Prologue length: magic, name length byte, name, crc.
fn prologue_end(bytes: &[u8]) -> usize {
    assert_eq!(&bytes[..4], b"FCD2");
    4 + 1 + bytes[4] as usize + 4
}

/// Structural fingerprint of a parsed table, for comparing a recovered
/// read against the clean read at the same commit point.
fn fingerprint(read: &fcbench::dbsim::ContainerRead) -> Vec<(String, usize, Vec<Vec<u8>>)> {
    read.table
        .columns
        .iter()
        .map(|c| (c.name.clone(), c.rows, c.chunks.clone()))
        .collect()
}

/// The tentpole guarantee, proven exhaustively: for **every** prefix of
/// the file, the reader either rejects a torn prologue or recovers to the
/// last commit point with the exact dropped-record count a reference walk
/// of the framing predicts.
#[test]
fn every_byte_truncation_recovers_to_the_last_commit_point() {
    let bytes = three_commit_container();
    let body = prologue_end(&bytes);
    let spans = span_map(&bytes, body);

    // Reference tables: the clean parse at each commit's locator end.
    let mut commit_tables = Vec::new(); // (locator_end, fingerprint)
    for s in spans.iter().filter(|s| s.is_locator) {
        let read = parse_container(&bytes[..s.end]).expect("commit prefix parses");
        assert_eq!(read.outcome, RecoveryOutcome::Clean);
        commit_tables.push((s.end, fingerprint(&read)));
    }
    assert_eq!(commit_tables.len(), 3, "three commit points");

    for cut in 0..=bytes.len() {
        let truncated = &bytes[..cut];
        if cut < body {
            assert!(
                parse_container(truncated).is_err(),
                "cut {cut}: torn prologue must be an error"
            );
            continue;
        }

        // Reference walk over the intact span map, stopping at `cut`.
        let mut dropped = 0u64;
        let mut last_commit_end: Option<usize> = None;
        let mut clean = false;
        let mut torn = false;
        for s in &spans {
            if s.is_locator {
                // Any prefix of a commit locator is consumed losslessly;
                // the full locator at EOF is the clean fast path.
                if s.end <= cut {
                    clean = s.end == cut;
                }
                continue;
            }
            if s.end <= cut {
                if s.tag == TAG_COMMIT {
                    dropped = 0;
                    last_commit_end = Some(s.end);
                } else {
                    dropped += 1;
                }
            } else {
                torn = s.start < cut; // partial tail record
                break;
            }
        }
        dropped += u64::from(torn);

        let read = parse_container(truncated)
            .unwrap_or_else(|e| panic!("cut {cut}: recovery must not error: {e}"));
        let expected_table = last_commit_end
            .map(|end| {
                commit_tables
                    .iter()
                    .find(|(loc_end, _)| end < *loc_end)
                    .expect("commit has a table")
                    .1
                    .clone()
            })
            .unwrap_or_default();
        assert_eq!(
            fingerprint(&read),
            expected_table,
            "cut {cut}: table must match the last commit point"
        );
        if clean {
            assert_eq!(
                read.outcome,
                RecoveryOutcome::Clean,
                "cut {cut} ends on a commit locator"
            );
        } else {
            assert_eq!(
                read.outcome,
                RecoveryOutcome::Recovered {
                    dropped_records: dropped
                },
                "cut {cut}: dropped-record count"
            );
        }
    }
}

/// The named framing boundaries from the issue, with exact counts: mid
/// record length, mid chunk payload, mid commit directory, mid locator —
/// plus garbage appended after a clean commit.
#[test]
fn boundary_truncations_drop_exact_record_counts() {
    let bytes = three_commit_container();
    let body = prologue_end(&bytes);
    let spans = span_map(&bytes, body);
    let locators: Vec<&Span> = spans.iter().filter(|s| s.is_locator).collect();
    let second_era: Vec<&Span> = spans
        .iter()
        .filter(|s| !s.is_locator && s.start >= locators[1].end)
        .collect();
    let outcome_at = |cut: usize| parse_container(&bytes[..cut]).expect("recovers").outcome;
    let columns_at = |cut: usize| {
        parse_container(&bytes[..cut])
            .expect("recovers")
            .table
            .columns
            .len()
    };

    // Mid record length field (byte 4 of the third column's COLUMN record
    // header): nothing after commit 2 survives, one torn record.
    let cut = second_era[0].start + 4;
    assert_eq!(
        outcome_at(cut),
        RecoveryOutcome::Recovered { dropped_records: 1 }
    );
    assert_eq!(columns_at(cut), 2);

    // Mid chunk payload: the COLUMN record and one full chunk record are
    // complete (2 dropped), the second chunk record is torn (+1).
    assert_eq!(second_era[1].tag, TAG_CHUNK);
    let cut = second_era[2].start + (second_era[2].end - second_era[2].start) / 2;
    assert_eq!(
        outcome_at(cut),
        RecoveryOutcome::Recovered { dropped_records: 3 }
    );

    // Mid commit directory (inside the third COMMIT record's body): every
    // complete record of the era drops, plus the torn commit itself.
    let commit3 = second_era.last().expect("third era ends in a commit");
    assert_eq!(commit3.tag, TAG_COMMIT);
    let complete = (second_era.len() - 1) as u64;
    let cut = commit3.start + (commit3.end - commit3.start) / 2;
    assert_eq!(
        outcome_at(cut),
        RecoveryOutcome::Recovered {
            dropped_records: complete + 1
        }
    );
    assert_eq!(columns_at(cut), 2);

    // Mid footer locator: the commit record itself is intact, so nothing
    // is lost — the torn locator prefix is consumed.
    let cut = locators[2].end - 1;
    assert_eq!(
        outcome_at(cut),
        RecoveryOutcome::Recovered { dropped_records: 0 }
    );
    assert_eq!(columns_at(cut), 3);

    // Garbage after a clean file: the full table survives, the tail is
    // reported as one torn record.
    let mut dirty = bytes.clone();
    dirty.extend_from_slice(&[0x5Au8; 33]);
    let read = parse_container(&dirty).expect("recovers");
    assert_eq!(
        read.outcome,
        RecoveryOutcome::Recovered { dropped_records: 1 }
    );
    assert_eq!(read.table.columns.len(), 3);
}

/// Recovered tables are not just structurally right — they decode to the
/// exact committed prefix of the data.
#[test]
fn recovered_tables_decode_to_committed_data() {
    let bytes = three_commit_container();
    let codec = Gorilla::new();
    let cols = [
        column("a", 60, 0.0),
        column("b", 60, 1.0),
        column("c", 40, 2.0),
    ];

    // Cut a few bytes into the third column's first record: commit 3 is
    // gone, commits 1–2 survive.
    let spans = span_map(&bytes, prologue_end(&bytes));
    let locators: Vec<&Span> = spans.iter().filter(|s| s.is_locator).collect();
    let read = parse_container(&bytes[..locators[1].end + 3]).expect("recovers");
    assert!(matches!(read.outcome, RecoveryOutcome::Recovered { .. }));
    assert_eq!(read.table.columns.len(), 2);
    for (comp, orig) in read.table.columns.iter().zip(&cols) {
        let decoded = comp.decode(&codec).expect("decode recovered column");
        assert_eq!(decoded.bytes, orig.bytes, "column {}", orig.name);
    }
}

/// Craft a syntactically valid container whose committed directory makes
/// a hostile claim, exercising `load_directory`'s gates. The commit
/// record and trailing locator are genuine, so the claim is reached via
/// the clean fast path — the gate is the only defense.
fn hostile_directory_container(dir_body: &[u8], chunk_payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    // Prologue: magic | name len | name | crc.
    out.extend_from_slice(b"FCD2");
    out.push(1);
    out.push(b'g');
    let crc = crc32(&out).to_le_bytes();
    out.extend_from_slice(&crc);
    // One real (tiny) chunk record the directory may point at.
    let elems = 1u32.to_le_bytes();
    put_record(&mut out, TAG_CHUNK, &[&elems, chunk_payload]).expect("chunk record");
    // The hostile commit, with its locator.
    let commit_at = out.len() as u64;
    put_record(&mut out, TAG_COMMIT, &[dir_body]).expect("commit record");
    out.extend_from_slice(b"FC2C");
    out.extend_from_slice(&commit_at.to_le_bytes());
    let lcrc = crc32(&out[out.len() - 12..]).to_le_bytes();
    out.extend_from_slice(&lcrc);
    out
}

/// Directory body claiming one column of `rows` doubles split into
/// `nchunks` chunks — with **no** chunk table entries behind the claim.
fn petabyte_directory(rows: u64, chunk_elems: u32) -> Vec<u8> {
    let mut dir = Vec::new();
    dir.extend_from_slice(&1u32.to_le_bytes()); // one column
    dir.push(1); // name length
    dir.push(b'x');
    dir.push(1); // Precision::Double
    dir.extend_from_slice(&rows.to_le_bytes());
    dir.extend_from_slice(&chunk_elems.to_le_bytes());
    let nchunks = rows.div_ceil(chunk_elems as u64) as u32;
    dir.extend_from_slice(&nchunks.to_le_bytes());
    dir
}

proptest! {
    /// A committed directory claiming terabytes-to-petabytes of rows in a
    /// kilobyte file is a typed error — the chunk-table claim is bounded
    /// by real directory bytes before any chunk list is reserved.
    #[test]
    fn petabyte_row_claims_in_committed_directories_are_rejected(
        log2_rows in 40u32..=50,
        chunk_elems in 1u32..=4096,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = petabyte_directory(1u64 << log2_rows, chunk_elems);
        let bytes = hostile_directory_container(&dir, &payload);
        prop_assert!(bytes.len() < 2048, "the hostile file itself stays tiny");
        let r = parse_container(&bytes);
        prop_assert!(
            r.is_err(),
            "a {}-byte container claiming 2^{log2_rows} rows must be rejected",
            bytes.len()
        );
    }

    /// A directory entry claiming a petabyte **payload** for a one-element
    /// chunk is rejected by the expansion gate before the payload length
    /// is trusted anywhere.
    #[test]
    fn petabyte_payload_claims_in_committed_directories_are_rejected(
        log2_payload in 40u32..=50,
        payload in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut dir = petabyte_directory(1, 1);
        // One chunk-table entry: offset of the real chunk record, but a
        // payload length in the terabytes.
        let chunk_offset = 10u64; // prologue is 4 + 1 + 1 + 4 bytes
        dir.extend_from_slice(&chunk_offset.to_le_bytes());
        dir.extend_from_slice(&(1u64 << log2_payload).to_le_bytes());
        dir.extend_from_slice(&1u32.to_le_bytes());
        let bytes = hostile_directory_container(&dir, &payload);
        prop_assert!(parse_container(&bytes).is_err());
    }
}

/// Many readers over one table, sharing one small engine with bounded
/// read-ahead, all see the same bytes — no deadlock, no cross-talk.
#[test]
fn concurrent_pooled_readers_share_one_engine() {
    let path = std::env::temp_dir().join(format!("fcbench-rec-conc-{}", std::process::id()));
    let cols: Vec<ColumnData> = (0..3)
        .map(|i| column(&format!("c{i}"), 4000, i as f32))
        .collect();
    let codec: Arc<dyn Compressor> = Arc::new(Gorilla::new());
    fcbench::dbsim::write_container(&path, &Gorilla::new(), &cols, 256).expect("write");
    let read = read_container(&path).expect("read");
    assert!(read.is_clean());
    let table = read.table;
    std::fs::remove_file(&path).ok();

    let pool = WorkerPool::new(PoolConfig::with_threads(2));
    std::thread::scope(|s| {
        for t in 0..4 {
            let (table, pool, codec, cols) = (&table, &pool, &codec, &cols);
            s.spawn(move || {
                // Stagger which column each reader starts on.
                for k in 0..table.columns.len() {
                    let i = (t + k) % table.columns.len();
                    let mut cursor = table.columns[i]
                        .cursor(pool, codec)
                        .expect("cursor")
                        .max_in_flight(1 + t % 2);
                    let mut got = Vec::new();
                    while let Some(page) = cursor.next_chunk().expect("page") {
                        got.extend_from_slice(page);
                    }
                    assert_eq!(got, cols[i].bytes, "reader {t}, column {i}");
                }
            });
        }
    });
}

/// The v1 layout still reads (flagged `Legacy`) and upgrades in place to
/// a clean v2 container with identical chunk bytes.
#[test]
fn legacy_containers_read_and_upgrade() {
    let tmp = std::env::temp_dir();
    let v1 = tmp.join(format!("fcbench-rec-v1-{}", std::process::id()));
    let v2 = tmp.join(format!("fcbench-rec-v2-{}", std::process::id()));
    let cols = vec![column("w", 300, 0.5)];
    let codec = Gorilla::new();
    legacy::write_container_v1(&v1, &codec, &cols, 64).expect("v1 write");

    let old = read_container(&v1).expect("v1 read");
    assert_eq!(old.outcome, RecoveryOutcome::Legacy);
    assert!(!old.is_clean());

    upgrade_container(&v1, &v2).expect("upgrade");
    let new = read_container(&v2).expect("v2 read");
    assert_eq!(new.outcome, RecoveryOutcome::Clean);
    assert_eq!(new.table.codec_name, old.table.codec_name);
    for (a, b) in old.table.columns.iter().zip(new.table.columns.iter()) {
        assert_eq!(a.chunks, b.chunks, "upgrade re-frames without recoding");
        assert_eq!(
            a.decode(&codec).expect("decode").bytes,
            b.decode(&codec).expect("decode").bytes
        );
    }
    std::fs::remove_file(&v1).ok();
    std::fs::remove_file(&v2).ok();
}

//! The chunked block-parallel pipeline must round-trip byte-exactly for
//! every registered codec across a sweep of block sizes (including the
//! degenerate 1-element block and the off-by-one sizes around the input
//! length) and worker-thread counts — with IEEE-754 landmines (NaN
//! payloads, signed zeros, subnormals, infinities) in the stream.

use fcbench::core::frame::decode_chunked_frame;
use fcbench::core::{Domain, FloatData, Pipeline};
use fcbench_bench::codecs::paper_registry;

const LEN: usize = 1000;

fn block_sizes() -> [usize; 5] {
    [1, LEN - 1, LEN, LEN + 1, 64 * 1024]
}

const THREADS: [usize; 3] = [1, 2, 8];

/// Specials-laden doubles: NaN payloads, ±0, subnormals, infinities mixed
/// into a drifting series.
fn special_data() -> FloatData {
    let specials = [
        f64::from_bits(0x7FF8_0000_0000_0001), // NaN with payload
        -0.0,
        5e-324,
        -5e-324,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
    ];
    let vals: Vec<f64> = (0..LEN)
        .map(|i| {
            if i % 11 == 3 {
                specials[i % specials.len()]
            } else {
                20.0 + (i as f64) * 0.125
            }
        })
        .collect();
    FloatData::from_f64(&vals, vec![LEN], Domain::TimeSeries).unwrap()
}

/// Benign two-decimal telemetry every codec (including BUFF) accepts.
fn decimal_data() -> FloatData {
    let vals: Vec<f64> = (0..LEN)
        .map(|i| ((20.0 + (i as f64 * 0.37).sin()) * 100.0).round() / 100.0)
        .collect();
    FloatData::from_f64(&vals, vec![LEN], Domain::TimeSeries).unwrap()
}

#[test]
fn pipeline_sweep_over_full_registry_with_specials() {
    let registry = paper_registry();
    let data = special_data();
    for entry in registry.iter() {
        for block in block_sizes() {
            for threads in THREADS {
                let p = Pipeline::with_codec(entry.codec().clone())
                    .block_elems(block)
                    .threads(threads);
                let frame = match p.compress(&data) {
                    Ok(f) => f,
                    // A typed refusal (BUFF rejects non-finite input) is the
                    // paper's "-" cell, not a failure.
                    Err(_) => continue,
                };
                let back = p.decompress(&frame).unwrap_or_else(|e| {
                    panic!("{} block {block} threads {threads}: {e}", entry.name())
                });
                assert_eq!(
                    back.bytes(),
                    data.bytes(),
                    "{} block {block} threads {threads}: byte-exact round trip",
                    entry.name()
                );
                assert_eq!(back.desc(), data.desc());
            }
        }
    }
}

#[test]
fn pipeline_sweep_every_codec_succeeds_on_decimal_telemetry() {
    let registry = paper_registry();
    let data = decimal_data();
    for entry in registry.iter() {
        // One representative block size per codec keeps the run fast; the
        // full cross-product runs on the specials sweep above.
        for threads in THREADS {
            let p = Pipeline::with_codec(entry.codec().clone())
                .block_elems(64)
                .threads(threads);
            let frame = p
                .compress(&data)
                .unwrap_or_else(|e| panic!("{} must accept decimals: {e}", entry.name()));

            // The FCB2 frame is self-describing and names the codec.
            let decoded = decode_chunked_frame(&frame).expect("valid FCB2");
            assert_eq!(decoded.codec, entry.name());
            assert_eq!(&decoded.desc, data.desc());
            assert_eq!(decoded.block_elems, 64);
            assert_eq!(decoded.payloads.len(), LEN.div_ceil(64));

            let back = p.decompress(&frame).expect("decompress");
            assert_eq!(back.bytes(), data.bytes(), "{}", entry.name());
        }
    }
}

#[test]
fn pipeline_rejects_frames_from_other_codecs() {
    let registry = paper_registry();
    let data = decimal_data();
    let gorilla = Pipeline::new(&registry, "gorilla")
        .unwrap()
        .block_elems(128);
    let chimp = Pipeline::new(&registry, "chimp128")
        .unwrap()
        .block_elems(128);
    let frame = gorilla.compress(&data).expect("compress");
    assert!(chimp.decompress(&frame).is_err());
}

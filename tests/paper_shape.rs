//! Integration checks for the paper's headline *shapes* — the qualitative
//! findings the reproduction must preserve (EXPERIMENTS.md records the
//! quantitative side).

use fcbench::core::metrics::harmonic_mean;
use fcbench::core::{Compressor, Domain};
use fcbench::datasets::{catalog, generate};

const ELEMS: usize = 32_768;

fn ratios_for(codec: &dyn Compressor, domain: Option<Domain>) -> Vec<f64> {
    catalog()
        .iter()
        .filter(|s| domain.is_none_or(|d| s.domain == d))
        .filter_map(|spec| {
            let data = generate(spec, ELEMS);
            codec
                .compress(&data)
                .ok()
                .map(|p| data.bytes().len() as f64 / p.len() as f64)
        })
        .collect()
}

#[test]
fn observation_1_ratios_are_small() {
    // "compression ratios <= 2.0 ... median is 1.16".
    let codec = fcbench::cpu::Gorilla::new();
    let mut all = ratios_for(&codec, None);
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = all[all.len() / 2];
    assert!(
        median > 0.9 && median < 1.6,
        "gorilla median ratio {median} out of the paper's band"
    );
}

#[test]
fn db_domain_is_hardest_for_transform_codecs() {
    // Figure 6a: DB is the most difficult domain (no structural patterns).
    let codec = fcbench::cpu::Bitshuffle::zzip();
    let db = harmonic_mean(&ratios_for(&codec, Some(Domain::Database))).unwrap();
    let obs = harmonic_mean(&ratios_for(&codec, Some(Domain::Observation))).unwrap();
    assert!(
        obs > db,
        "OBS ({obs:.3}) should compress better than DB ({db:.3})"
    );
}

#[test]
fn fpzip_leads_on_hpc_data() {
    // Table 4 / Recommendations: fpzip has the best HPC compression ratio.
    let fpzip = harmonic_mean(&ratios_for(&fcbench::cpu::Fpzip::new(), Some(Domain::Hpc))).unwrap();
    let gorilla = harmonic_mean(&ratios_for(
        &fcbench::cpu::Gorilla::new(),
        Some(Domain::Hpc),
    ))
    .unwrap();
    let gfc = harmonic_mean(&ratios_for(
        &fcbench::gpu::Gfc::with_config(Default::default(), usize::MAX),
        Some(Domain::Hpc),
    ))
    .unwrap();
    assert!(fpzip > gorilla, "fpzip {fpzip:.3} vs gorilla {gorilla:.3}");
    assert!(fpzip > gfc, "fpzip {fpzip:.3} vs gfc {gfc:.3}");
}

#[test]
fn zstd_class_backend_beats_lz4_overall() {
    // Figure 7a: bitshuffle+zstd 1.466 > bitshuffle+LZ4 1.430.
    let zstd = harmonic_mean(&ratios_for(&fcbench::cpu::Bitshuffle::zzip(), None)).unwrap();
    let lz4 = harmonic_mean(&ratios_for(&fcbench::cpu::Bitshuffle::lz4(), None)).unwrap();
    assert!(
        zstd >= lz4,
        "bitshuffle-zstd {zstd:.3} must match/beat -lz4 {lz4:.3}"
    );
}

#[test]
fn chimp_beats_gorilla_on_db_data() {
    // Analysis under Observation 2: dictionary predictors help Chimp128
    // outperform Gorilla, most visibly on DB data.
    let chimp = harmonic_mean(&ratios_for(
        &fcbench::cpu::Chimp::new(),
        Some(Domain::Database),
    ))
    .unwrap();
    let gorilla = harmonic_mean(&ratios_for(
        &fcbench::cpu::Gorilla::new(),
        Some(Domain::Database),
    ))
    .unwrap();
    assert!(
        chimp > gorilla,
        "chimp {chimp:.3} vs gorilla {gorilla:.3} on DB"
    );
}

#[test]
fn buff_fails_exactly_on_hurricane() {
    // Table 4: BUFF's only HPC failure is hurricane (NaN fill values).
    let buff = fcbench::cpu::Buff::new();
    for spec in catalog().iter().filter(|s| s.domain == Domain::Hpc) {
        let data = generate(spec, 8192);
        let outcome = buff.compress(&data);
        if spec.name == "hurricane" {
            assert!(outcome.is_err(), "hurricane must defeat BUFF");
        } else {
            assert!(outcome.is_ok(), "{} should be BUFF-compressible", spec.name);
        }
    }
}

#[test]
fn gfc_paper_size_gating_matches_table4_dashes() {
    // The GFC dashes in Table 4 are exactly the datasets over 512 MB.
    let expected_failures = [
        "astro-mhd",
        "astro-pt",
        "miranda3d",
        "jane-street",
        "nyc-taxi",
        "gas-price",
        "tpcxBB-store",
        "tpcxBB-web",
        "tpcH-lineitem",
        "g24-78-usb",
        "hdr-palermo",
    ];
    for spec in catalog() {
        let too_big = spec.paper_bytes > 512 * 1024 * 1024;
        assert_eq!(
            too_big,
            expected_failures.contains(&spec.name),
            "{}: paper size {} vs 512MB limit",
            spec.name,
            spec.paper_bytes
        );
    }
}

#[test]
fn astro_mhd_is_the_most_compressible_dataset() {
    // Its 0.97-bit entropy makes astro-mhd every codec's best case
    // (Table 4: ratios 5.9-22.8 there vs <= 4 elsewhere).
    let codec = fcbench::cpu::Spdp::new();
    let mut best: Option<(String, f64)> = None;
    for spec in catalog() {
        let data = generate(&spec, ELEMS);
        if let Ok(p) = codec.compress(&data) {
            let cr = data.bytes().len() as f64 / p.len() as f64;
            if best.as_ref().is_none_or(|(_, b)| cr > *b) {
                best = Some((spec.name.to_string(), cr));
            }
        }
    }
    let (name, cr) = best.unwrap();
    assert_eq!(name, "astro-mhd", "best dataset was {name} at {cr:.2}");
    assert!(cr > 4.0, "astro-mhd should be an outlier, got {cr:.2}");
}

#[test]
fn dimension_info_does_not_change_ratios_significantly() {
    // Observation 6 via Mann-Whitney on fpzip's md vs 1d ratios.
    use fcbench::stats::mann_whitney_u;
    let codec = fcbench::cpu::Fpzip::new();
    let mut md = Vec::new();
    let mut oned = Vec::new();
    for spec in catalog().iter().filter(|s| s.paper_dims.len() >= 2) {
        let data = generate(spec, 16_384);
        let flat = data.flattened_1d();
        if let (Ok(a), Ok(b)) = (codec.compress(&data), codec.compress(&flat)) {
            md.push(data.bytes().len() as f64 / a.len() as f64);
            oned.push(data.bytes().len() as f64 / b.len() as f64);
        }
    }
    assert!(md.len() >= 10, "enough multidimensional datasets");
    let r = mann_whitney_u(&md, &oned);
    assert!(
        !r.rejects_at(0.05),
        "md vs 1d should not differ significantly (p = {})",
        r.p
    );
}
